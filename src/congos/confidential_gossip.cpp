#include "congos/confidential_gossip.h"

#include <algorithm>

#include "common/assert.h"
#include "common/math.h"
#include "congos/retransmit.h"

namespace congos::core {

ConfidentialGossipService::ConfidentialGossipService(
    ProcessId self, const CongosConfig* cfg, const partition::PartitionSet* partitions,
    bool degenerate, Rng* rng, sim::DeliveryListener* listener, Hooks hooks)
    : self_(self),
      cfg_(cfg),
      partitions_(partitions),
      degenerate_(degenerate),
      rng_(rng),
      listener_(listener),
      hooks_(std::move(hooks)) {
  CONGOS_ASSERT(cfg_ != nullptr && partitions_ != nullptr && rng_ != nullptr);
}

void ConfidentialGossipService::reset(Round /*now*/) {
  cache_.clear();
  confirm_.clear();
  store_.clear();
  delivered_.clear();
  pending_direct_.clear();
  // counters_ intentionally survive: they describe the experiment, not the
  // protocol state (a restarted process has no memory of them either way;
  // keeping them only affects reporting).
}

void ConfidentialGossipService::deliver_local(Round now, RumorUid uid,
                                              const coding::Bytes& data,
                                              bool reassembled) {
  if (!delivered_.insert(uid).second) return;
  ++counters_.delivered;
  if (reassembled) ++counters_.reassembled;
  if (listener_ != nullptr) {
    listener_->on_rumor_delivered(self_, uid, now, {data.data(), data.size()});
  }
}

void ConfidentialGossipService::queue_direct(Round now, const sim::Rumor& rumor,
                                             const DynamicBitset* skip) {
  auto body = direct_pool_.acquire();
  body->rumor = rumor;
  rumor.dest.for_each([&](std::uint32_t q) {
    if (q == self_) return;
    if (skip != nullptr && skip->test(q)) return;
    pending_direct_.push_back(sim::Envelope{
        self_, q, sim::ServiceTag{sim::ServiceKind::kFallback, 0}, body});
    ++counters_.shoot_messages;
  });
  (void)now;
}

bool ConfidentialGossipService::all_destinations_acked(const CacheEntry& entry) const {
  bool all = true;
  entry.rumor.dest.for_each([&](std::uint32_t q) {
    if (q != self_ && !entry.acked.test(q)) all = false;
  });
  return all;
}

void ConfidentialGossipService::arm_fallback(CacheEntry& entry, Round now) {
  if (!cfg_->retransmit.enabled) {
    entry.next_shot = entry.shoot_at;  // classic fire-once shoot
    return;
  }
  entry.acked = DynamicBitset(entry.rumor.dest.size());
  const Round target = entry.shoot_at - cfg_->retransmit.max_link_delay;
  entry.next_shot = retransmit_first(now + 1, target, cfg_->retransmit.budget);
}

void ConfidentialGossipService::fire_fallback(CacheEntry& entry, Round now) {
  ++counters_.shoots;
  if (!cfg_->retransmit.enabled) {
    queue_direct(now, entry.rumor);
    entry.confirmed = true;  // nothing more to do for this rumor
    return;
  }
  queue_direct(now, entry.rumor, &entry.acked);
  const Round target = entry.shoot_at - cfg_->retransmit.max_link_delay;
  const Round next = retransmit_next(now, target);
  if (next == kNoRound) {
    entry.confirmed = true;  // schedule exhausted: the deadline is upon us
  } else {
    entry.next_shot = next;
  }
}

void ConfidentialGossipService::inject(Round now, const sim::Rumor& rumor) {
  ++counters_.injected;
  if (rumor.dest.test(self_)) deliver_local(now, rumor.uid, rumor.data, false);

  const Round dline = effective_deadline(rumor.deadline, *cfg_);
  if (dline == 0 || degenerate_) {
    // Too-short deadline (paper: dline <= 48) or tau >= n/log^2 n
    // (Theorem 16 first case): send directly to the destination set.
    ++counters_.injected_direct;
    if (!cfg_->retransmit.enabled) {
      queue_direct(now, rumor);
      return;
    }
    // Lossy-link mode: the one direct burst is no longer a guarantee. Track
    // the rumor like a fallback entry - send now, then retry unacked
    // destinations on the deadline-aware schedule.
    CacheEntry entry;
    entry.rumor = rumor;
    entry.shoot_at = now + rumor.deadline;
    arm_fallback(entry, now);
    queue_direct(now, rumor, &entry.acked);
    cache_.emplace(rumor.uid, std::move(entry));
    return;
  }

  CacheEntry entry;
  entry.rumor = rumor;
  entry.shoot_at = now + rumor.deadline;
  arm_fallback(entry, now);
  cache_.emplace(rumor.uid, std::move(entry));

  const Round expires_at = now + dline;
  const auto num_partitions = static_cast<PartitionIndex>(partitions_->count());
  for (PartitionIndex l = 0; l < num_partitions; ++l) {
    const auto& part = (*partitions_)[l];
    const GroupIndex groups = part.num_groups();
    auto frags = split_rumor(rumor, l, groups, expires_at, dline, *rng_);
    const GroupIndex own = part.group_of(self_);
    for (GroupIndex g = 0; g < groups; ++g) {
      if (g == own) {
        auto body = std::make_shared<FragmentBody>();
        body->fragment = std::move(frags[g]);
        hooks_.gossip_fragment(
            l, now, std::move(body),
            now + static_cast<Round>(isqrt(static_cast<std::uint64_t>(dline))));
      } else {
        hooks_.proxy(dline, l)->enqueue(now, std::move(frags[g]));
      }
    }
  }
}

void ConfidentialGossipService::send_phase(Round now, sim::Sender& out) {
  for (auto& e : pending_direct_) out.send(std::move(e));
  pending_direct_.clear();

  // Deadline fallback ("shoot"): send unconfirmed rumors directly. With
  // retransmission enabled the shoot starts early and re-fires until every
  // destination acknowledged or the schedule runs out at the deadline.
  for (auto& [uid, entry] : cache_) {
    if (entry.confirmed || entry.next_shot != now) continue;
    fire_fallback(entry, now);
  }
  for (auto& e : pending_direct_) out.send(std::move(e));
  pending_direct_.clear();

  gc(now);
}

void ConfidentialGossipService::on_group_fragment(Round now, PartitionIndex l,
                                                  const Fragment& frag) {
  CONGOS_ASSERT(frag.meta.key.partition == l);
  if (frag.meta.expires_at < now) return;
  hooks_.gd(frag.meta.dline, l)->enqueue(now, frag);
  if (frag.meta.dest.test(self_)) add_fragment_for_reassembly(now, frag);
}

void ConfidentialGossipService::on_proxy_return(Round now, PartitionIndex l,
                                                std::vector<Fragment> frags) {
  for (auto& frag : frags) {
    CONGOS_ASSERT(frag.meta.key.partition == l);
    if (frag.meta.expires_at < now) continue;
    if (frag.meta.dest.test(self_)) add_fragment_for_reassembly(now, frag);
    hooks_.gd(frag.meta.dline, l)->enqueue(now, std::move(frag));
  }
}

void ConfidentialGossipService::on_partials(Round now, const PartialsPayload& partials) {
  for (const auto& frag : partials.fragments) {
    CONGOS_ASSERT_MSG(frag.meta.dest.test(self_),
                      "received a GroupDistribution partial while not in the "
                      "fragment's destination set");
    add_fragment_for_reassembly(now, frag);
  }
}

void ConfidentialGossipService::on_direct(Round now, const DirectRumorPayload& direct) {
  CONGOS_ASSERT_MSG(direct.rumor.dest.test(self_),
                    "received a direct rumor while not in its destination set");
  // Duplicate-safe: deliver_local() early-returns on an already-delivered
  // uid, so late/duplicated copies and retransmissions are absorbed here.
  deliver_local(now, direct.rumor.uid, direct.rumor.data, false);
}

void ConfidentialGossipService::on_direct_ack(RumorUid uid, ProcessId from) {
  auto it = cache_.find(uid);
  if (it == cache_.end() || it->second.confirmed) return;
  CacheEntry& entry = it->second;
  if (entry.acked.size() == 0 || from >= entry.acked.size()) return;
  if (entry.acked.test(from)) return;  // duplicate ack (dup faults / retries)
  entry.acked.set(from);
  if (all_destinations_acked(entry)) {
    entry.confirmed = true;
    ++counters_.confirmed;
  }
}

void ConfidentialGossipService::add_fragment_for_reassembly(Round now,
                                                            const Fragment& frag) {
  if (delivered_.contains(frag.meta.key.rumor)) return;
  const StoreKey key{frag.meta.key.rumor, frag.meta.key.partition};
  StoreEntry& entry = store_[key];
  entry.num_groups = frag.meta.num_groups;
  entry.expires_at = std::max(entry.expires_at, frag.meta.expires_at);
  entry.parts.emplace(frag.meta.key.group, frag.data);
  if (entry.parts.size() == entry.num_groups) {
    // All XOR shares for this partition present: reassemble the rumor.
    coding::Bytes data;
    bool first = true;
    for (const auto& [g, part] : entry.parts) {
      if (first) {
        data = part;
        first = false;
      } else {
        coding::xor_into(data, part);
      }
    }
    deliver_local(now, frag.meta.key.rumor, data, true);
  }
}

void ConfidentialGossipService::on_report(Round /*now*/,
                                          const DistributionReportBody& report) {
  for (const auto& hit : report.hits) {
    auto it = cache_.find(hit.rumor);
    if (it == cache_.end() || it->second.confirmed) continue;
    auto& matrix = confirm_[hit.rumor];
    if (matrix.empty()) {
      matrix.resize(partitions_->count());
      for (PartitionIndex l = 0; l < partitions_->count(); ++l) {
        matrix[l].assign((*partitions_)[l].num_groups(),
                         DynamicBitset(it->second.rumor.dest.size()));
      }
    }
    CONGOS_ASSERT(report.partition < matrix.size());
    CONGOS_ASSERT(report.group < matrix[report.partition].size());
    CONGOS_ASSERT_MSG(
        (*partitions_)[report.partition].group_of(report.reporter) == report.group,
        "report group does not match the reporter's partition group");
    matrix[report.partition][report.group].set(hit.target);
    check_confirmed(hit.rumor);
  }
}

void ConfidentialGossipService::check_confirmed(RumorUid uid) {
  auto cit = cache_.find(uid);
  auto mit = confirm_.find(uid);
  if (cit == cache_.end() || cit->second.confirmed || mit == confirm_.end()) return;
  const DynamicBitset& dest = cit->second.rumor.dest;
  for (const auto& groups : mit->second) {
    bool all = true;
    for (const auto& covered : groups) {
      if (!covered.contains_all(dest)) {
        all = false;
        break;
      }
    }
    if (all) {
      // Some partition delivered every fragment to every destination.
      cit->second.confirmed = true;
      ++counters_.confirmed;
      confirm_.erase(mit);
      return;
    }
  }
}

void ConfidentialGossipService::gc(Round now) {
  // Cache/confirm entries die once the (real) deadline passed; the fragment
  // store and delivered set are swept occasionally.
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.shoot_at < now) {
      confirm_.erase(it->first);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  if (now - last_gc_ < 256) return;
  last_gc_ = now;
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->second.expires_at < now) {
      it = store_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace congos::core
