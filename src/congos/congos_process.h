// CongosProcess: one node of the CONGOS system.
//
// Owns and wires the full service stack of Fig. 1 for one process:
// ConfidentialGossip on top; per-partition GroupGossip[l] instances (filtered
// to the process's group) and one unfiltered AllGossip below; per
// (deadline-class, partition) Proxy[l] and GroupDistribution[l] instances
// created lazily. All services multiplex over the simulator Network via
// tagged envelopes; this class is the router.
#pragma once

#include <map>
#include <memory>

#include "congos/confidential_gossip.h"
#include "congos/config.h"
#include "congos/group_distribution.h"
#include "congos/proxy.h"
#include "gossip/continuous_gossip.h"
#include "partition/partition.h"
#include "sim/process.h"

namespace congos::core {

class CongosProcess final : public sim::Process {
 public:
  /// All CongosProcesses of one system share `cfg` and `partitions` (the
  /// partition family is common knowledge - part of the algorithm's input).
  /// `behavior` selects the honest protocol or the Section-7 lazy
  /// (freeloading) variant used by experiment E14.
  CongosProcess(ProcessId id, std::shared_ptr<const CongosConfig> cfg,
                std::shared_ptr<const partition::PartitionSet> partitions,
                std::uint64_t seed, sim::DeliveryListener* listener,
                ProcessBehavior behavior = ProcessBehavior::kHonest);

  void on_start(Round now) override;
  void on_restart(Round now) override;
  void send_phase(Round now, sim::Sender& out) override;
  void receive_phase(Round now, std::span<const sim::Envelope> inbox) override;
  void inject(const sim::Rumor& rumor) override;

  /// Deep-copies the whole service stack (services hold only values plus
  /// pointers to this process's stable members, so copies taken here are
  /// valid to restore onto the same process later).
  std::unique_ptr<sim::ProcessSnapshot> snapshot() const override;
  bool restore(const sim::ProcessSnapshot& snap, Round now) override;

  // -- introspection ---------------------------------------------------------

  const CgCounters& counters() const { return cg_->counters(); }
  /// Total messages dropped by the group filters (must be 0; bug canary).
  std::uint64_t filter_drops() const;
  /// Gossip rumors absorbed by gid-idempotence across all gossip instances
  /// (re-pushes, fault-layer duplicates, retransmissions).
  std::uint64_t duplicates_suppressed() const;
  Round alive_since() const { return wakeup_; }

  /// Builds the shared partition family for a system of n processes.
  static std::shared_ptr<const partition::PartitionSet> build_partitions(
      std::size_t n, const CongosConfig& cfg);

  /// Theorem 16 first case: with tau >= n/log^2 n CONGOS degenerates to
  /// direct sending.
  static bool is_degenerate(std::size_t n, const CongosConfig& cfg);

 private:
  struct Instance {
    std::vector<std::unique_ptr<ProxyService>> proxies;  // one per partition
    std::vector<std::unique_ptr<GroupDistributionService>> gds;
  };

  std::shared_ptr<const CongosConfig> cfg_;
  std::shared_ptr<const partition::PartitionSet> partitions_;
  Rng rng_;
  sim::DeliveryListener* listener_;
  ProcessBehavior behavior_ = ProcessBehavior::kHonest;
  bool degenerate_;
  Round wakeup_ = 0;
  Round now_ = 0;  // tracked for hooks called outside phase entry points

  std::vector<std::unique_ptr<gossip::ContinuousGossipService>> group_gossip_;
  std::unique_ptr<gossip::ContinuousGossipService> all_gossip_;
  std::map<Round, Instance> instances_;  // keyed by deadline class
  std::unique_ptr<ConfidentialGossipService> cg_;

  /// Receipt acks queued during receive_phase (retransmission mode only),
  /// flushed at the start of the next send_phase.
  std::vector<sim::Envelope> pending_acks_;
  PayloadPool<PartialsAckPayload> partials_ack_pool_;
  PayloadPool<DirectAckPayload> direct_ack_pool_;

  Instance& instance(Round dline);
  ProxyService* proxy(Round dline, PartitionIndex l);
  GroupDistributionService* gd(Round dline, PartitionIndex l);

  void build_services();
  void on_group_gossip_deliver(PartitionIndex l, Round now,
                               const gossip::GossipRumor& rumor);
  void on_all_gossip_deliver(Round now, const gossip::GossipRumor& rumor);
};

}  // namespace congos::core
