#include "congos/config.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/math.h"

namespace congos::core {

Round effective_deadline(Round d, const CongosConfig& cfg) {
  CONGOS_ASSERT(cfg.direct_threshold >= 32);
  CONGOS_ASSERT(is_pow2(static_cast<std::uint64_t>(cfg.max_effective_deadline)));
  if (d < cfg.direct_threshold) return 0;
  const Round capped = std::min(d, cfg.max_effective_deadline);
  return static_cast<Round>(floor_pow2(static_cast<std::uint64_t>(capped)));
}

Round block_length(Round dline) {
  CONGOS_ASSERT(dline >= 32 && is_pow2(static_cast<std::uint64_t>(dline)));
  return dline / 4;
}

Round iteration_length(Round dline) {
  return static_cast<Round>(isqrt(static_cast<std::uint64_t>(dline))) + 2;
}

Round iterations_per_block(Round dline) {
  const Round iters = block_length(dline) / iteration_length(dline);
  CONGOS_ASSERT_MSG(iters >= 1, "deadline class too short for one iteration");
  return iters;
}

std::uint64_t service_fanout(std::size_t n, Round dline, std::size_t collaborators,
                             const CongosConfig& cfg) {
  const double sqrt_d = std::sqrt(static_cast<double>(dline));
  const double n_d = static_cast<double>(n);
  const double collab = static_cast<double>(std::max<std::size_t>(collaborators, 1));
  const double raw = cfg.fanout_c * std::pow(n_d, cfg.fanout_exponent / sqrt_d) *
                     log_factor(n) * n_d / collab;
  if (!(raw < n_d)) return n;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(raw)));
}

}  // namespace congos::core
