// Proxy[l] service (Section 4.4, Fig. 3/9).
//
// Delivers rumor fragments safely across group boundaries. A process p in
// group b holding fragments destined for other groups repeatedly samples
// potential proxies from those groups and asks them to distribute the
// fragments inside their own group via GroupGossip[l]. Processes in the same
// group collaborate: they share, over GroupGossip[l], the set of proxies
// discovered to have failed and the set of still-active collaborators, which
// both concentrates fan-out and keeps the per-round message count at
// O(n^{1+E/sqrt(dline)} log n) collectively ([PROXY:MESSAGES]).
//
// Timing: blocks of dline/4 rounds aligned to the global clock, each block
// split into iterations of sqrt(dline)+2 rounds:
//   round 1                  - send proxy requests (fragments) to sampled
//                              members of each other group;
//   rounds 2..sqrt(dline)+1  - GroupGossip[l]: share proxied fragments,
//                              failed-proxies, collaborator liveness;
//   round sqrt(dline)+2      - proxies acknowledge; requesters mark
//                              non-acknowledging proxies failed.
//
// [PROXY:CONFIDENTIAL]: a fragment bound to group g is only ever sent to
// processes in group g (enforced here, asserted by the auditor).
#pragma once

#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/flat_set.h"
#include "common/pool.h"
#include "common/rng.h"
#include "congos/config.h"
#include "congos/fragment.h"
#include "partition/partition.h"
#include "sim/process.h"

namespace congos::core {

class ProxyService {
 public:
  struct Hooks {
    /// Inject a metadata rumor into GroupGossip[l] (dest = own group).
    std::function<void(Round now, sim::PayloadPtr body, Round deadline_at)> gossip_share;
    /// Return collected partial rumors to ConfidentialGossip (block end).
    std::function<void(Round now, std::vector<Fragment> partials)> return_partials;
    /// Rounds this process has been continuously alive (from the host).
    std::function<Round()> alive_since;
  };

  ProxyService(ProcessId self, PartitionIndex l, const partition::Partition* part,
               Round dline, const CongosConfig* cfg, Rng* rng, Hooks hooks);

  /// Crash-restart wipe.
  void reset(Round now);

  /// ConfidentialGossip queues a fragment destined for another group.
  void enqueue(Round now, Fragment frag);

  void send_phase(Round now, sim::Sender& out);

  /// A proxy request arrived: cache the fragments (they belong to this
  /// process's own group) and remember to acknowledge the requester.
  void on_request(Round now, const ProxyRequestPayload& req, ProcessId from);

  /// A proxy acknowledged our request.
  void on_ack(Round now, ProcessId from);

  /// Intra-group share delivered by GroupGossip[l].
  void on_share(Round now, const ProxyShareBody& share);

  bool active() const { return status_active_; }
  Round dline() const { return dline_; }

 private:
  ProcessId self_;
  PartitionIndex partition_;
  const partition::Partition* part_;
  Round dline_;
  Round block_len_;
  Round iter_len_;
  Round iters_per_block_;
  const CongosConfig* cfg_;
  Rng* rng_;
  Hooks hooks_;
  GroupIndex my_group_;

  // Requester-side state.
  std::vector<Fragment> waiting_;  // enqueued since block start
  /// Fragments to place, keyed by target group.
  FlatMap<GroupIndex, std::vector<Fragment>> my_rumors_;
  FlatMap<GroupIndex, bool> group_satisfied_;
  /// Scratch: sorted group keys for the send_requests() pass (iteration
  /// order feeds RNG draws, so it must be bucket-layout independent).
  std::vector<GroupIndex> request_groups_;
  bool status_active_ = false;
  DynamicBitset failed_proxies_;
  DynamicBitset collaborators_;
  /// Requests outstanding in the current iteration, keyed by group.
  FlatMap<GroupIndex, std::vector<ProcessId>> outstanding_;
  DynamicBitset acks_received_;

  // Recycled wire payloads (DESIGN.md section 9).
  PayloadPool<ProxyRequestPayload> req_pool_;
  PayloadPool<ProxyAckPayload> ack_pool_;

  // Proxy-side state.
  std::vector<Fragment> proxy_buffer_;  // fragments cached for my own group
  FlatSet<FragmentKey, FragmentKeyHash> buffered_keys_;
  std::vector<ProcessId> requesters_to_ack_;

  // Collector state.
  std::vector<Fragment> partial_rumors_;  // my-group fragments from shares
  FlatSet<FragmentKey, FragmentKeyHash> partial_keys_;

  void begin_block(Round now);
  void settle_acks();
  void send_requests(Round now, sim::Sender& out);
  /// Retransmission mode only: re-sends this iteration's outstanding requests
  /// mid-iteration, so a single dropped request no longer costs the whole
  /// iteration (the proxy side is idempotent; acks still settle at round 0).
  void resend_requests(Round now, sim::Sender& out);
  void inject_share(Round now);
  void send_acks(Round now, sim::Sender& out);
};

}  // namespace congos::core
