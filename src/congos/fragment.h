// Rumor fragments and every CONGOS wire payload type.
//
// A fragment is one XOR share of a rumor, bound to a (partition, group):
// fragment (uid, l, g) is the share that group g of partition l is allowed
// to hold. Fragment *metadata* (destination set, deadline, identifiers) is
// not confidential - the paper discusses hiding it in Section 7 - but the
// payload bytes of any proper subset of a partition's fragments are
// information-theoretically independent of the rumor.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/xor_share.h"
#include "common/bitset.h"
#include "common/types.h"
#include "sim/message.h"
#include "sim/rumor.h"
#include "wire/wire.h"

namespace congos::core {

struct FragmentKey {
  RumorUid rumor;
  PartitionIndex partition = 0;
  GroupIndex group = 0;

  friend bool operator==(const FragmentKey&, const FragmentKey&) = default;
  friend auto operator<=>(const FragmentKey&, const FragmentKey&) = default;
};

struct FragmentKeyHash {
  std::size_t operator()(const FragmentKey& k) const noexcept {
    std::uint64_t x = pack(k.rumor) ^ (static_cast<std::uint64_t>(k.partition) << 48) ^
                      (static_cast<std::uint64_t>(k.group) << 40);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

/// Metadata carried with each fragment (the paper: destination set, deadline
/// and counter ride along; they reveal nothing about the datum).
struct FragmentMeta {
  FragmentKey key;
  DynamicBitset dest;          // the original rumor's destination set
  Round expires_at = 0;        // absolute trimmed deadline of the rumor
  Round dline = 0;             // effective deadline class (power of two)
  GroupIndex num_groups = 2;   // fragments per partition (tau + 1)
};

struct Fragment {
  FragmentMeta meta;
  coding::Bytes data;
};

/// v1 wire fields of a fragment's metadata (codec walk, src/wire/wire.h).
template <class S, wire::SameBase<FragmentMeta> M>
void wire_fields(S& s, M& m) {
  s.varint32(m.key.rumor.source);
  s.varint(m.key.rumor.seq);
  s.varint32(m.key.partition);
  s.varint32(m.key.group);
  s.bitset(m.dest);
  s.zigzag(m.expires_at);
  s.zigzag(m.dline);
  s.varint32(m.num_groups);
}

template <class S, wire::SameBase<Fragment> F>
void wire_fields(S& s, F& f) {
  wire_fields(s, f.meta);
  s.bytes(f.data);
}

/// THE fragment layout, documented once (previously a comment and a formula
/// drifted independently: the comment said "key 12 + 2 + 2 ... group count
/// 2" while partition/group/num_groups are 32-bit GroupIndex/PartitionIndex
/// values, and the formula counted the group-count field at the wrong
/// width). Modeled fixed-width layout, matching the codec's field walk above
/// field for field:
///
///   uid 12 + partition 4 + group 4 + expires_at 8 + dline 8 + num_groups 4
///   (= kFragmentMetaModeledBytes) + destination bitset + share bytes.
///
/// The group-count field is counted exactly once, here.
inline constexpr std::uint64_t kFragmentMetaModeledBytes = 12 + 4 + 4 + 8 + 8 + 4;

inline std::uint64_t modeled_size(const Fragment& f) {
  return kFragmentMetaModeledBytes + f.meta.dest.byte_size() + f.data.size();
}

/// Batched fragment framing (DESIGN.md section 11): consecutive fragments of
/// the same rumor share all rumor-level metadata, so after the first one a
/// flag byte 1 means "inherit the previous fragment's uid / destination set
/// / expiry / deadline class / group count" and only (partition, group,
/// data) are re-encoded. Proxy requests and partials batches are mostly runs
/// of same-rumor fragments, which is where the real bytes shrink. Flag
/// values > 1, or flag 1 on the first fragment, are decode errors.
template <class S, class V>
void wire_fragment_batch(S& s, V& fragments) {
  s.seq(fragments);
  const Fragment* prev = nullptr;
  for (auto& f : fragments) {
    if (!s.ok()) return;
    std::uint8_t share = 0;
    if constexpr (!S::kReading) {
      share = (prev != nullptr && f.meta.key.rumor == prev->meta.key.rumor &&
               f.meta.dest == prev->meta.dest &&
               f.meta.expires_at == prev->meta.expires_at &&
               f.meta.dline == prev->meta.dline &&
               f.meta.num_groups == prev->meta.num_groups)
                  ? 1
                  : 0;
    }
    s.u8(share);
    if constexpr (S::kReading) {
      if (!s.ok() || share > 1 || (share == 1 && prev == nullptr)) {
        s.fail();
        return;
      }
      if (share == 1) f.meta = prev->meta;
    }
    if (share == 1) {
      s.varint32(f.meta.key.partition);
      s.varint32(f.meta.key.group);
    } else {
      wire_fields(s, f.meta);
    }
    s.bytes(f.data);
    prev = &f;
  }
}

// ---------------------------------------------------------------------------
// Network payloads (Envelope bodies)
// ---------------------------------------------------------------------------

/// Proxy[l] request: fragments a process asks members of another group to
/// distribute on its behalf (Fig. 9 round 1). All fragments belong to the
/// receiver's group - [PROXY:CONFIDENTIAL].
struct ProxyRequestPayload final : sim::Payload {
  ProxyRequestPayload() : sim::Payload(sim::PayloadKind::kProxyRequest) {}

  Round dline = 0;  // deadline class, for routing to the right instance
  std::vector<Fragment> fragments;

  std::uint64_t encoded_size() const override;  // defined after the walks
  std::uint64_t modeled_size() const override;

  void reuse() { fragments.clear(); }  // PayloadPool recycle hook
};

/// Proxy[l] acknowledgement (Fig. 9 last iteration round).
struct ProxyAckPayload final : sim::Payload {
  ProxyAckPayload() : sim::Payload(sim::PayloadKind::kProxyAck) {}

  Round dline = 0;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override { return 8; }

  void reuse() {}  // PayloadPool recycle hook
};

/// GroupDistribution[l] "partials": fragments sent to a process in their
/// destination set (Fig. 10 round 2). Receiver reassembles via
/// ConfidentialGossip - [GD:CONFIDENTIAL] guarantees receiver is in every
/// fragment's destination set.
struct PartialsPayload final : sim::Payload {
  PartialsPayload() : sim::Payload(sim::PayloadKind::kPartials) {}

  Round dline = 0;
  std::vector<Fragment> fragments;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override;

  void reuse() { fragments.clear(); }  // PayloadPool recycle hook
};

/// ConfidentialGossip's direct fallback ("shoot", Fig. 8 line 50): the whole
/// rumor, sent by the source to a destination when the deadline is about to
/// expire without a delivery confirmation.
struct DirectRumorPayload final : sim::Payload {
  DirectRumorPayload() : sim::Payload(sim::PayloadKind::kDirectRumor) {}

  sim::Rumor rumor;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override { return sim::modeled_size(rumor); }

  void reuse() {}  // PayloadPool recycle hook; `rumor` is reassigned on reuse
};

/// Receipt acknowledgement for a PartialsPayload (retransmission mode,
/// DESIGN.md section 10). Metadata only: the deadline class routes the ack
/// back to the sender's GroupDistribution[l] instance; the sender already
/// knows which hits it has in flight towards the acking process.
struct PartialsAckPayload final : sim::Payload {
  PartialsAckPayload() : sim::Payload(sim::PayloadKind::kPartialsAck) {}

  Round dline = 0;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override { return 8; }

  void reuse() {}  // PayloadPool recycle hook
};

/// Receipt acknowledgement for a DirectRumorPayload (retransmission mode).
/// Carries only the rumor id - the same identifier the confirmation
/// machinery already ships in the clear.
struct DirectAckPayload final : sim::Payload {
  DirectAckPayload() : sim::Payload(sim::PayloadKind::kDirectAck) {}

  RumorUid rumor;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override { return 12; }

  void reuse() {}  // PayloadPool recycle hook
};

// ---------------------------------------------------------------------------
// Gossip rumor bodies (carried inside gossip::GossipMsg)
// ---------------------------------------------------------------------------

/// A fragment disseminated inside its own group via GroupGossip[l]
/// (ConfidentialGossip step 2).
struct FragmentBody final : sim::Payload {
  FragmentBody() : sim::Payload(sim::PayloadKind::kFragment) {}

  Fragment fragment;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override { return core::modeled_size(fragment); }
};

/// Proxy[l] intra-group share (Fig. 9 round 2): fragments received as a
/// proxy for this group, the failed-proxies set, and the sender id (which
/// establishes the collaborator set).
struct ProxyShareBody final : sim::Payload {
  ProxyShareBody() : sim::Payload(sim::PayloadKind::kProxyShare) {}

  Round dline = 0;
  std::uint64_t block = 0;
  ProcessId from = kNoProcess;
  std::vector<Fragment> proxied;          // fragments of the *receiving* group
  std::vector<ProcessId> failed_proxies;  // per other-group flattened

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override;
};

/// One hitSet entry: fragment of rumor `rumor` was sent to process `target`.
struct Hit {
  ProcessId target = kNoProcess;
  RumorUid rumor;

  friend bool operator==(const Hit&, const Hit&) = default;
  friend auto operator<=>(const Hit&, const Hit&) = default;
};

/// GroupDistribution[l] intra-group share (Fig. 10 round 3): hitSet and
/// sender id (collaborator counting).
struct HitSetShareBody final : sim::Payload {
  HitSetShareBody() : sim::Payload(sim::PayloadKind::kHitSetShare) {}

  Round dline = 0;
  std::uint64_t block = 0;
  ProcessId from = kNoProcess;
  std::vector<Hit> hits;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override;
};

/// AllGossip distribution report (Fig. 10 line 36): sanitized hitSet - which
/// (group g of partition l) fragments of which rumor ids were sent to which
/// processes. Contains identifiers only, never fragment data ([GD:CONFIRM]).
struct DistributionReportBody final : sim::Payload {
  DistributionReportBody() : sim::Payload(sim::PayloadKind::kDistributionReport) {}

  ProcessId reporter = kNoProcess;
  PartitionIndex partition = 0;
  GroupIndex group = 0;  // reporter's group in `partition`
  Round dline = 0;
  std::vector<Hit> hits;

  std::uint64_t encoded_size() const override;
  std::uint64_t modeled_size() const override;
};

/// Splits rumor data into `num_groups` fragments for partition `l`.
/// Fragment g goes to group g. Fresh randomness per partition.
std::vector<Fragment> split_rumor(const sim::Rumor& rumor, PartitionIndex l,
                                  GroupIndex num_groups, Round expires_at, Round dline,
                                  Rng& rng);

// ---------------------------------------------------------------------------
// Codec field walks (one per payload kind) and the size overrides they drive.
// The walks live below the payload classes (complete types); encoded_size()
// definitions live below the walks (ordinary name lookup at definition).
// ---------------------------------------------------------------------------

template <class S, wire::SameBase<ProxyRequestPayload> P>
void wire_fields(S& s, P& p) {
  s.zigzag(p.dline);
  wire_fragment_batch(s, p.fragments);
}

template <class S, wire::SameBase<ProxyAckPayload> P>
void wire_fields(S& s, P& p) {
  s.zigzag(p.dline);
}

template <class S, wire::SameBase<PartialsPayload> P>
void wire_fields(S& s, P& p) {
  s.zigzag(p.dline);
  wire_fragment_batch(s, p.fragments);
}

template <class S, wire::SameBase<DirectRumorPayload> P>
void wire_fields(S& s, P& p) {
  wire_fields(s, p.rumor);
}

template <class S, wire::SameBase<PartialsAckPayload> P>
void wire_fields(S& s, P& p) {
  s.zigzag(p.dline);
}

template <class S, wire::SameBase<DirectAckPayload> P>
void wire_fields(S& s, P& p) {
  s.varint32(p.rumor.source);
  s.varint(p.rumor.seq);
}

template <class S, wire::SameBase<FragmentBody> P>
void wire_fields(S& s, P& p) {
  wire_fields(s, p.fragment);
}

template <class S, wire::SameBase<Hit> H>
void wire_fields(S& s, H& h) {
  s.varint32(h.target);
  s.varint32(h.rumor.source);
  s.varint(h.rumor.seq);
}

template <class S, wire::SameBase<ProxyShareBody> P>
void wire_fields(S& s, P& p) {
  s.zigzag(p.dline);
  s.varint(p.block);
  s.varint32(p.from);
  wire_fragment_batch(s, p.proxied);
  s.seq(p.failed_proxies);
  for (auto& q : p.failed_proxies) {
    if (!s.ok()) return;
    s.varint32(q);
  }
}

template <class S, wire::SameBase<HitSetShareBody> P>
void wire_fields(S& s, P& p) {
  s.zigzag(p.dline);
  s.varint(p.block);
  s.varint32(p.from);
  s.seq(p.hits);
  for (auto& h : p.hits) {
    if (!s.ok()) return;
    wire_fields(s, h);
  }
}

template <class S, wire::SameBase<DistributionReportBody> P>
void wire_fields(S& s, P& p) {
  s.varint32(p.reporter);
  s.varint32(p.partition);
  s.varint32(p.group);
  s.zigzag(p.dline);
  s.seq(p.hits);
  for (auto& h : p.hits) {
    if (!s.ok()) return;
    wire_fields(s, h);
  }
}

/// Modeled fixed-width size of one hitSet entry: target (4) + uid (12).
inline constexpr std::uint64_t kHitModeledBytes = 16;

template <class P>
std::uint64_t sized_by_walk(const P& p) {
  wire::SizeSink s;
  wire_fields(s, p);
  return s.size();
}

inline std::uint64_t ProxyRequestPayload::encoded_size() const {
  return sized_by_walk(*this);
}
inline std::uint64_t ProxyRequestPayload::modeled_size() const {
  std::uint64_t total = 12;  // dline (8) + fragment count (4)
  for (const auto& f : fragments) total += core::modeled_size(f);
  return total;
}

inline std::uint64_t ProxyAckPayload::encoded_size() const {
  return sized_by_walk(*this);
}

inline std::uint64_t PartialsPayload::encoded_size() const {
  return sized_by_walk(*this);
}
inline std::uint64_t PartialsPayload::modeled_size() const {
  // Identical accounting to ProxyRequestPayload: same layout, and the old
  // estimates drifting apart is exactly what the codec cross-check flags.
  std::uint64_t total = 12;
  for (const auto& f : fragments) total += core::modeled_size(f);
  return total;
}

inline std::uint64_t DirectRumorPayload::encoded_size() const {
  return sized_by_walk(*this);
}

inline std::uint64_t PartialsAckPayload::encoded_size() const {
  return sized_by_walk(*this);
}

inline std::uint64_t DirectAckPayload::encoded_size() const {
  return sized_by_walk(*this);
}

inline std::uint64_t FragmentBody::encoded_size() const {
  return sized_by_walk(*this);
}

inline std::uint64_t ProxyShareBody::encoded_size() const {
  return sized_by_walk(*this);
}
inline std::uint64_t ProxyShareBody::modeled_size() const {
  // dline (8) + block (8) + from (4) + two counts (4 + 4) + entries.
  std::uint64_t total = 28 + 4 * failed_proxies.size();
  for (const auto& f : proxied) total += core::modeled_size(f);
  return total;
}

inline std::uint64_t HitSetShareBody::encoded_size() const {
  return sized_by_walk(*this);
}
inline std::uint64_t HitSetShareBody::modeled_size() const {
  // dline (8) + block (8) + from (4) + count (4) + hits.
  return 24 + kHitModeledBytes * hits.size();
}

inline std::uint64_t DistributionReportBody::encoded_size() const {
  return sized_by_walk(*this);
}
inline std::uint64_t DistributionReportBody::modeled_size() const {
  // reporter (4) + partition (4) + group (4) + dline (8) + count (4) + hits.
  return 24 + kHitModeledBytes * hits.size();
}

}  // namespace congos::core
