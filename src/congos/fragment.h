// Rumor fragments and every CONGOS wire payload type.
//
// A fragment is one XOR share of a rumor, bound to a (partition, group):
// fragment (uid, l, g) is the share that group g of partition l is allowed
// to hold. Fragment *metadata* (destination set, deadline, identifiers) is
// not confidential - the paper discusses hiding it in Section 7 - but the
// payload bytes of any proper subset of a partition's fragments are
// information-theoretically independent of the rumor.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/xor_share.h"
#include "common/bitset.h"
#include "common/types.h"
#include "sim/message.h"
#include "sim/rumor.h"

namespace congos::core {

struct FragmentKey {
  RumorUid rumor;
  PartitionIndex partition = 0;
  GroupIndex group = 0;

  friend bool operator==(const FragmentKey&, const FragmentKey&) = default;
  friend auto operator<=>(const FragmentKey&, const FragmentKey&) = default;
};

struct FragmentKeyHash {
  std::size_t operator()(const FragmentKey& k) const noexcept {
    std::uint64_t x = pack(k.rumor) ^ (static_cast<std::uint64_t>(k.partition) << 48) ^
                      (static_cast<std::uint64_t>(k.group) << 40);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

/// Metadata carried with each fragment (the paper: destination set, deadline
/// and counter ride along; they reveal nothing about the datum).
struct FragmentMeta {
  FragmentKey key;
  DynamicBitset dest;          // the original rumor's destination set
  Round expires_at = 0;        // absolute trimmed deadline of the rumor
  Round dline = 0;             // effective deadline class (power of two)
  GroupIndex num_groups = 2;   // fragments per partition (tau + 1)
};

struct Fragment {
  FragmentMeta meta;
  coding::Bytes data;
};

/// Serialized size of a fragment: key (12 + 2 + 2) + destination bitset +
/// expiry/class (16) + group count (2) + share bytes.
inline std::size_t wire_size(const Fragment& f) {
  return 16 + f.meta.dest.byte_size() + 16 + 2 + f.data.size();
}

// ---------------------------------------------------------------------------
// Network payloads (Envelope bodies)
// ---------------------------------------------------------------------------

/// Proxy[l] request: fragments a process asks members of another group to
/// distribute on its behalf (Fig. 9 round 1). All fragments belong to the
/// receiver's group - [PROXY:CONFIDENTIAL].
struct ProxyRequestPayload final : sim::Payload {
  ProxyRequestPayload() : sim::Payload(sim::PayloadKind::kProxyRequest) {}

  Round dline = 0;  // deadline class, for routing to the right instance
  std::vector<Fragment> fragments;

  std::size_t wire_size() const override {
    std::size_t total = 12;
    for (const auto& f : fragments) total += core::wire_size(f);
    return total;
  }

  void reuse() { fragments.clear(); }  // PayloadPool recycle hook
};

/// Proxy[l] acknowledgement (Fig. 9 last iteration round).
struct ProxyAckPayload final : sim::Payload {
  ProxyAckPayload() : sim::Payload(sim::PayloadKind::kProxyAck) {}

  Round dline = 0;

  std::size_t wire_size() const override { return 8; }

  void reuse() {}  // PayloadPool recycle hook
};

/// GroupDistribution[l] "partials": fragments sent to a process in their
/// destination set (Fig. 10 round 2). Receiver reassembles via
/// ConfidentialGossip - [GD:CONFIDENTIAL] guarantees receiver is in every
/// fragment's destination set.
struct PartialsPayload final : sim::Payload {
  PartialsPayload() : sim::Payload(sim::PayloadKind::kPartials) {}

  Round dline = 0;
  std::vector<Fragment> fragments;

  std::size_t wire_size() const override {
    std::size_t total = 12;
    for (const auto& f : fragments) total += core::wire_size(f);
    return total;
  }

  void reuse() { fragments.clear(); }  // PayloadPool recycle hook
};

/// ConfidentialGossip's direct fallback ("shoot", Fig. 8 line 50): the whole
/// rumor, sent by the source to a destination when the deadline is about to
/// expire without a delivery confirmation.
struct DirectRumorPayload final : sim::Payload {
  DirectRumorPayload() : sim::Payload(sim::PayloadKind::kDirectRumor) {}

  sim::Rumor rumor;

  std::size_t wire_size() const override { return sim::wire_size(rumor); }

  void reuse() {}  // PayloadPool recycle hook; `rumor` is reassigned on reuse
};

/// Receipt acknowledgement for a PartialsPayload (retransmission mode,
/// DESIGN.md section 10). Metadata only: the deadline class routes the ack
/// back to the sender's GroupDistribution[l] instance; the sender already
/// knows which hits it has in flight towards the acking process.
struct PartialsAckPayload final : sim::Payload {
  PartialsAckPayload() : sim::Payload(sim::PayloadKind::kPartialsAck) {}

  Round dline = 0;

  std::size_t wire_size() const override { return 8; }

  void reuse() {}  // PayloadPool recycle hook
};

/// Receipt acknowledgement for a DirectRumorPayload (retransmission mode).
/// Carries only the rumor id - the same identifier the confirmation
/// machinery already ships in the clear.
struct DirectAckPayload final : sim::Payload {
  DirectAckPayload() : sim::Payload(sim::PayloadKind::kDirectAck) {}

  RumorUid rumor;

  std::size_t wire_size() const override { return 12; }

  void reuse() {}  // PayloadPool recycle hook
};

// ---------------------------------------------------------------------------
// Gossip rumor bodies (carried inside gossip::GossipMsg)
// ---------------------------------------------------------------------------

/// A fragment disseminated inside its own group via GroupGossip[l]
/// (ConfidentialGossip step 2).
struct FragmentBody final : sim::Payload {
  FragmentBody() : sim::Payload(sim::PayloadKind::kFragment) {}

  Fragment fragment;

  std::size_t wire_size() const override { return core::wire_size(fragment); }
};

/// Proxy[l] intra-group share (Fig. 9 round 2): fragments received as a
/// proxy for this group, the failed-proxies set, and the sender id (which
/// establishes the collaborator set).
struct ProxyShareBody final : sim::Payload {
  ProxyShareBody() : sim::Payload(sim::PayloadKind::kProxyShare) {}

  Round dline = 0;
  std::uint64_t block = 0;
  ProcessId from = kNoProcess;
  std::vector<Fragment> proxied;          // fragments of the *receiving* group
  std::vector<ProcessId> failed_proxies;  // per other-group flattened

  std::size_t wire_size() const override {
    std::size_t total = 20 + 4 * failed_proxies.size();
    for (const auto& f : proxied) total += core::wire_size(f);
    return total;
  }
};

/// One hitSet entry: fragment of rumor `rumor` was sent to process `target`.
struct Hit {
  ProcessId target = kNoProcess;
  RumorUid rumor;

  friend bool operator==(const Hit&, const Hit&) = default;
  friend auto operator<=>(const Hit&, const Hit&) = default;
};

/// GroupDistribution[l] intra-group share (Fig. 10 round 3): hitSet and
/// sender id (collaborator counting).
struct HitSetShareBody final : sim::Payload {
  HitSetShareBody() : sim::Payload(sim::PayloadKind::kHitSetShare) {}

  Round dline = 0;
  std::uint64_t block = 0;
  ProcessId from = kNoProcess;
  std::vector<Hit> hits;

  std::size_t wire_size() const override { return 20 + 16 * hits.size(); }
};

/// AllGossip distribution report (Fig. 10 line 36): sanitized hitSet - which
/// (group g of partition l) fragments of which rumor ids were sent to which
/// processes. Contains identifiers only, never fragment data ([GD:CONFIRM]).
struct DistributionReportBody final : sim::Payload {
  DistributionReportBody() : sim::Payload(sim::PayloadKind::kDistributionReport) {}

  ProcessId reporter = kNoProcess;
  PartitionIndex partition = 0;
  GroupIndex group = 0;  // reporter's group in `partition`
  Round dline = 0;
  std::vector<Hit> hits;

  std::size_t wire_size() const override { return 20 + 16 * hits.size(); }
};

/// Splits rumor data into `num_groups` fragments for partition `l`.
/// Fragment g goes to group g. Fresh randomness per partition.
std::vector<Fragment> split_rumor(const sim::Rumor& rumor, PartitionIndex l,
                                  GroupIndex num_groups, Round expires_at, Round dline,
                                  Rng& rng);

}  // namespace congos::core
