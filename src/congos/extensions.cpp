#include "congos/extensions.h"

#include "common/assert.h"

namespace congos::core {

std::vector<sim::Rumor> hide_destination_set(const sim::Rumor& rumor, std::size_t n,
                                             std::uint64_t first_seq, Rng& rng) {
  CONGOS_ASSERT(rumor.dest.size() == n);
  std::vector<sim::Rumor> out;
  out.reserve(n);
  for (ProcessId q = 0; q < n; ++q) {
    sim::Rumor s;
    s.uid = RumorUid{rumor.uid.source, first_seq + q};
    s.deadline = rumor.deadline;
    s.dest = DynamicBitset(n);
    s.dest.set(q);
    if (rumor.dest.test(q)) {
      s.data = rumor.data;
    } else {
      // Chaff: indistinguishable from content for everyone but q, who has
      // no way to know either (it simply is not a destination of rho).
      s.data.resize(rumor.data.size());
      rng.fill_bytes(s.data.data(), s.data.size());
    }
    out.push_back(std::move(s));
  }
  return out;
}

void CoverTraffic::at_round_start(sim::Engine& engine) {
  const auto n = static_cast<ProcessId>(engine.n());
  if (seq_.empty()) seq_.resize(n, opt_.seq_base);
  auto& rng = engine.rng();
  for (ProcessId p = 0; p < n; ++p) {
    if (!engine.alive(p) || engine.injected_this_round(p)) continue;
    if (!rng.chance(opt_.rate)) continue;
    sim::Rumor decoy;
    decoy.uid = RumorUid{p, seq_[p]++};
    decoy.deadline = opt_.deadline;
    decoy.data.resize(opt_.payload_len);
    rng.fill_bytes(decoy.data.data(), decoy.data.size());
    decoy.dest = DynamicBitset(engine.n());
    decoy.dest.set(rng.next_below(n));
    engine.inject(p, std::move(decoy));
    ++decoys_;
  }
}

}  // namespace congos::core
