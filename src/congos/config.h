// CONGOS configuration and deadline policy (Section 4.2).
//
// The paper fixes several constants (the 48 in n^{1+48/sqrt(dline)}, the
// Theta(.) factors, the dline > 48 direct-send threshold, the c*log^6 n
// deadline cap). At simulable scales (n <= 4096) those exact constants would
// either vanish or saturate, so they are configuration knobs with defaults
// chosen to keep the asymptotic terms visible; experiments sweep them.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "gossip/continuous_gossip.h"

namespace congos::core {

/// Ack/retransmit hardening for lossy links (DESIGN.md section 10). Off by
/// default: the paper's reliable network needs none of it, and the golden
/// traces pin the faults-off behavior. When enabled, Partials and direct
/// fallback sends are acknowledged, the deadline fallback fires early and
/// re-fires on a schedule whose gaps halve towards the deadline (see
/// congos/retransmit.h), and GroupDistribution only counts a destination as
/// "hit" once the destination acknowledged the partials - so confirmations
/// stay truthful under message loss.
struct RetransmitConfig {
  bool enabled = false;
  /// log2 of the fallback lead: the first direct shot fires 2^budget rounds
  /// before the rumor expires, giving budget unacknowledged retries with
  /// geometrically shrinking gaps. The retry count a rumor actually gets is
  /// derived from its rounds-to-deadline (a shorter deadline affords fewer).
  int budget = 3;
  /// Worst-case link delay the protocol assumes (mirror FaultConfig::
  /// max_delay): the fallback schedule targets deadline - max_link_delay so
  /// even a maximally late final retry still lands in time.
  Round max_link_delay = 0;

  friend bool operator==(const RetransmitConfig&, const RetransmitConfig&) = default;
};

struct CongosConfig {
  /// Collusion tolerance tau (Section 6): rumors are split into tau+1
  /// fragments and partitions have tau+1 groups. tau = 1 is plain CONGOS
  /// (2 groups, bit partitions).
  std::uint32_t tau = 1;

  /// Multiplier on the c*tau*log n partition count (tau >= 2 only).
  double partition_c = 2.0;

  /// The exponent constant "48" in the service fan-out n^{1+E/sqrt(dline)}.
  /// Paper value 48; default 6 so that the fan-out term is distinguishable
  /// from n at simulable scales (see DESIGN.md section 5).
  double fanout_exponent = 6.0;

  /// Theta(.) multiplier in the service fan-outs.
  double fanout_c = 1.0;

  /// Fan-out of the underlying continuous gossip realization.
  int gossip_fanout = 3;

  /// Dissemination strategy of the gossip black box: randomized epidemic
  /// push, or the deterministic expander-graph push that mirrors [13].
  gossip::GossipStrategy gossip_strategy = gossip::GossipStrategy::kEpidemicPush;

  /// Rumors with deadline strictly below this are sent directly to their
  /// destination set at injection (the paper does this for dline <= 48).
  /// Must be >= 32: shorter deadlines cannot fit the 4-block pipeline with
  /// at least one full iteration per block.
  Round direct_threshold = 32;

  /// Deadline cap: the paper trims deadlines to c*log^6 n; anything above
  /// this is truncated. Must be a power of two.
  Round max_effective_deadline = 1 << 10;

  /// GroupDistribution activation requires being alive for
  /// gd_alive_factor * dline rounds (paper: 2/3).
  double gd_alive_factor = 2.0 / 3.0;

  /// Theorem 16's first case sends everything directly once
  /// tau >= n / log^2 n. That cutoff is asymptotic; at simulable n it
  /// triggers for tau as small as 2, hiding the pipeline the experiments
  /// want to measure. Setting this false keeps the fragment pipeline running
  /// regardless of the cutoff (the partition construction still verifies
  /// Lemma 13's properties, so correctness is unaffected).
  bool allow_degenerate = true;

  /// If tau >= n / log^2 n the algorithm degenerates to direct sending
  /// (Theorem 16's first case); computed per instance.

  /// Deterministic seed for the shared partition family.
  std::uint64_t partition_seed = 0x5eed0fc04605ULL;

  /// Lossy-link hardening knobs (inert by default).
  RetransmitConfig retransmit;
};

/// Per-process behaviour (Section 7, "Open questions: malicious users").
///
/// kLazy models a *freeloading* process: it follows the protocol for its own
/// rumors and consumes what it receives, but silently refuses to do work for
/// others - it ignores proxy requests (never caches, never acks) and never
/// runs GroupDistribution. Lazy processes do not lie; they just don't help.
/// The paper conjectures the collusion machinery tolerates "some groups
/// misbehaving and failing to deliver their message fragments" - experiment
/// E14 measures how much laziness the pipeline absorbs before the
/// deterministic deadline fallback has to pick up the slack (QoD itself can
/// never be lost: the fallback is run by the rumor's own source).
enum class ProcessBehavior : std::uint8_t {
  kHonest,
  kLazy,
};

/// Effective (trimmed) deadline class for a rumor deadline `d`:
/// min(d, cap) rounded down to a power of two. Returns 0 when the rumor
/// should be sent directly instead (d below the direct threshold).
Round effective_deadline(Round d, const CongosConfig& cfg);

/// Block length of a deadline class (dline / 4).
Round block_length(Round dline);

/// Iteration length inside a block (sqrt(dline) + 2).
Round iteration_length(Round dline);

/// Number of whole iterations per block (>= 1 for dline >= 32).
Round iterations_per_block(Round dline);

/// Per-collaborator fan-out: ceil(fanout_c * n^{fanout_exponent/sqrt(dline)}
/// * ln(n) * n / collaborators), clamped to [1, n].
std::uint64_t service_fanout(std::size_t n, Round dline, std::size_t collaborators,
                             const CongosConfig& cfg);

}  // namespace congos::core
