// GroupDistribution[l] service (Section 4.5, Fig. 4/10).
//
// Distributes the fragments a group holds to the rumors' destination sets.
// Each iteration, every active collaborator samples destination processes
// that have not yet been "hit" and sends each one exactly the fragments whose
// destination set contains it ([GD:CONFIDENTIAL]). The group shares hitSets
// via GroupGossip[l], so collaborators do not duplicate work, and counts its
// active members to size the fan-out. At the end of each block, the sanitized
// hitSet (identifiers only, no fragment data) is published via AllGossip so
// sources can confirm delivery ([GD:CONFIRM]) and suppress their fallback.
//
// Note on targeting: the outline samples targets from the opposite group,
// but Lemma 9's proof measures progress over all of [n] \ hitProcs, and
// confirmation (Fig. 8 lines 41-46) needs hitSet coverage of *every*
// destination, including destinations in the sender's own group. We
// therefore target any not-yet-hit destination in [n]; this only ever sends
// fragments to processes in their destination set, so [GD:CONFIDENTIAL] is
// unaffected. (See DESIGN.md section 6.)
#pragma once

#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/flat_set.h"
#include "common/pool.h"
#include "common/rng.h"
#include "congos/config.h"
#include "congos/fragment.h"
#include "partition/partition.h"
#include "sim/process.h"

namespace congos::core {

struct HitHash {
  std::size_t operator()(const Hit& h) const noexcept {
    std::uint64_t x = pack(h.rumor) ^ (static_cast<std::uint64_t>(h.target) << 37);
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

class GroupDistributionService {
 public:
  struct Hooks {
    /// Inject a metadata rumor into GroupGossip[l] (dest = own group).
    std::function<void(Round now, sim::PayloadPtr body, Round deadline_at)> gossip_share;
    /// Inject the sanitized report into AllGossip (dest = [n]).
    std::function<void(Round now, sim::PayloadPtr body, Round deadline_at)> all_gossip;
    /// Rounds this process has been continuously alive (from the host).
    std::function<Round()> alive_since;
  };

  GroupDistributionService(ProcessId self, PartitionIndex l,
                           const partition::Partition* part, Round dline,
                           const CongosConfig* cfg, Rng* rng, Hooks hooks);

  void reset(Round now);

  /// ConfidentialGossip routes own-group fragments here (waiting-partials).
  void enqueue(Round now, Fragment frag);

  void send_phase(Round now, sim::Sender& out);

  /// Intra-group hitSet share delivered by GroupGossip[l].
  void on_share(Round now, const HitSetShareBody& share);

  /// Receipt ack for a partials message (retransmission mode): the hits sent
  /// to `from` graduate from pending to the hitSet. Until then the
  /// destination stays targetable, so the next distribute() round is the
  /// retransmission - confirmations only ever report *acknowledged* hits.
  void on_partials_ack(Round now, ProcessId from);

  bool active() const { return status_active_; }
  Round dline() const { return dline_; }
  std::size_t hitset_size() const { return hitset_.size(); }

 private:
  ProcessId self_;
  PartitionIndex partition_;
  const partition::Partition* part_;
  Round dline_;
  Round block_len_;
  Round iter_len_;
  Round iters_per_block_;
  const CongosConfig* cfg_;
  Rng* rng_;
  Hooks hooks_;
  GroupIndex my_group_;

  std::vector<Fragment> waiting_;   // enqueued, not yet collected
  std::vector<Fragment> partials_;  // this block's fragments to distribute
  FlatSet<FragmentKey, FragmentKeyHash> partial_keys_;
  FlatSet<Hit, HitHash> hitset_;
  /// Retransmission mode only: hits sent but not yet acknowledged, keyed by
  /// destination. Cleared at block boundaries (unacked sends of a finished
  /// block were lost for good - the fallback covers those rumors).
  FlatMap<ProcessId, std::vector<Hit>> pending_unacked_;
  DynamicBitset collaborators_;
  bool status_active_ = false;

  // Per-round scratch for distribute(), hoisted so the needed-map and its
  // per-target lists keep their capacity between rounds instead of being
  // reallocated each call (DESIGN.md section 9).
  FlatMap<ProcessId, std::uint32_t> needed_index_;  // target -> slot in lists
  std::vector<std::vector<const Fragment*>> needed_lists_;
  std::vector<ProcessId> candidates_;
  std::vector<std::uint32_t> pick_scratch_;
  PayloadPool<PartialsPayload> partials_pool_;

  void begin_block(Round now);
  void distribute(Round now, sim::Sender& out);
  void inject_share(Round now);
  void publish_report(Round now);
};

}  // namespace congos::core
