#include "congos/fragment.h"

#include "common/assert.h"

namespace congos::core {

std::vector<Fragment> split_rumor(const sim::Rumor& rumor, PartitionIndex l,
                                  GroupIndex num_groups, Round expires_at, Round dline,
                                  Rng& rng) {
  CONGOS_ASSERT(num_groups >= 2);
  auto shares = coding::split(rumor.data, num_groups, rng);
  std::vector<Fragment> frags;
  frags.reserve(num_groups);
  for (GroupIndex g = 0; g < num_groups; ++g) {
    Fragment f;
    f.meta.key = FragmentKey{rumor.uid, l, g};
    f.meta.dest = rumor.dest;
    f.meta.expires_at = expires_at;
    f.meta.dline = dline;
    f.meta.num_groups = num_groups;
    f.data = std::move(shares[g]);
    frags.push_back(std::move(f));
  }
  return frags;
}

}  // namespace congos::core
