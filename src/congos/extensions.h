// Metadata-hiding extensions (Section 7, "Discussion").
//
// CONGOS keeps rumor *contents* confidential but releases metadata: which
// processes are destinations, and how many rumors exist. The paper sketches
// two mitigations, both implemented here:
//
//  * Destination-set hiding: when rumor rho is injected at p, the source
//    creates n singleton rumors, one per process; destinations receive the
//    real content, everyone else an independent random string of the same
//    length. Only a destination can tell its rumor from chaff, so observers
//    learn nothing about rho.D. Message complexity is unchanged per rumor
//    count, but the rumor count (and hence total data moved) grows by a
//    factor n/|D|.
//
//  * Existence hiding (cover traffic): processes continuously inject fake,
//    content-free rumors so that observers cannot count real rumors. Modeled
//    as an adversary component that injects decoys at a configurable rate.
#pragma once

#include <vector>

#include "common/rng.h"
#include "sim/engine.h"
#include "sim/rumor.h"

namespace congos::core {

/// Explodes `rumor` into `n` singleton rumors (destination {q} for every
/// q in [n]): real content for q in rumor.dest, fresh random bytes of the
/// same length otherwise. Sequence numbers are allocated from `first_seq`
/// (the caller owns the per-source counter; n consecutive values are used).
/// The source's own singleton is included when the source is a destination.
std::vector<sim::Rumor> hide_destination_set(const sim::Rumor& rumor, std::size_t n,
                                             std::uint64_t first_seq, Rng& rng);

/// Cover-traffic injector: each round, every alive process injects a decoy
/// rumor with probability `rate`. Decoys carry random data to a random
/// singleton destination, making the real rumor count unobservable.
class CoverTraffic final : public sim::Adversary {
 public:
  struct Options {
    double rate = 0.01;     // decoys per process per round
    Round deadline = 64;
    std::size_t payload_len = 16;
    /// Decoy sequence numbers start here to stay clear of workload ranges.
    std::uint64_t seq_base = 1ull << 32;
  };

  explicit CoverTraffic(Options opt) : opt_(opt) {}

  void at_round_start(sim::Engine& engine) override;

  std::uint64_t decoys_injected() const { return decoys_; }

 private:
  Options opt_;
  std::vector<std::uint64_t> seq_;
  std::uint64_t decoys_ = 0;
};

}  // namespace congos::core
