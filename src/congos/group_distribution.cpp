#include "congos/group_distribution.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/math.h"

namespace congos::core {

GroupDistributionService::GroupDistributionService(ProcessId self, PartitionIndex l,
                                                   const partition::Partition* part,
                                                   Round dline, const CongosConfig* cfg,
                                                   Rng* rng, Hooks hooks)
    : self_(self),
      partition_(l),
      part_(part),
      dline_(dline),
      block_len_(block_length(dline)),
      iter_len_(iteration_length(dline)),
      iters_per_block_(iterations_per_block(dline)),
      cfg_(cfg),
      rng_(rng),
      hooks_(std::move(hooks)),
      my_group_(part->group_of(self)),
      collaborators_(part->n()) {
  CONGOS_ASSERT(part_ != nullptr && cfg_ != nullptr && rng_ != nullptr);
}

void GroupDistributionService::reset(Round /*now*/) {
  waiting_.clear();
  partials_.clear();
  partial_keys_.clear();
  hitset_.clear();
  pending_unacked_.clear();
  collaborators_.reset_all();
  status_active_ = false;
}

void GroupDistributionService::enqueue(Round now, Fragment frag) {
  CONGOS_ASSERT_MSG(frag.meta.key.group == my_group_,
                    "GroupDistribution only handles own-group fragments");
  if (frag.meta.expires_at < now) return;
  waiting_.push_back(std::move(frag));
}

void GroupDistributionService::begin_block(Round now) {
  partials_.clear();
  partial_keys_.clear();
  hitset_.clear();
  pending_unacked_.clear();
  status_active_ = false;

  // Activation requires ~2*dline/3 rounds of continuous uptime (Fig. 10),
  // which guarantees the process witnessed the whole preceding proxy block.
  const auto needed = static_cast<Round>(
      std::ceil(cfg_->gd_alive_factor * static_cast<double>(dline_)));
  if (now - hooks_.alive_since() < needed) return;

  status_active_ = true;
  for (auto& frag : waiting_) {
    if (frag.meta.expires_at < now) continue;
    if (partial_keys_.insert(frag.meta.key).second) {
      partials_.push_back(std::move(frag));
    }
  }
  waiting_.clear();
  collaborators_ = part_->members(my_group_);
}

void GroupDistributionService::distribute(Round now, sim::Sender& out) {
  if (!status_active_ || partials_.empty()) return;
  std::erase_if(partials_,
                [now](const Fragment& f) { return f.meta.expires_at < now; });

  // Destinations still needing at least one of our fragments. The map and
  // its per-target lists are per-instance scratch: cleared (capacity kept)
  // on every call rather than reallocated.
  needed_index_.clear();
  std::uint32_t used = 0;
  for (const auto& frag : partials_) {
    frag.meta.dest.for_each([&](std::uint32_t q) {
      if (hitset_.contains(Hit{q, frag.meta.key.rumor})) return;
      auto [slot, inserted] = needed_index_.try_emplace(q, 0);
      if (inserted) {
        if (used == needed_lists_.size()) needed_lists_.emplace_back();
        needed_lists_[used].clear();
        slot->second = used++;
      }
      needed_lists_[slot->second].push_back(&frag);
    });
  }
  if (needed_index_.empty()) return;

  candidates_.clear();
  candidates_.reserve(needed_index_.size());
  for (const auto& [q, _] : needed_index_) candidates_.push_back(q);
  std::sort(candidates_.begin(), candidates_.end());  // determinism

  const std::uint64_t fanout =
      service_fanout(part_->n(), dline_, collaborators_.count(), *cfg_);
  const auto k =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(fanout, candidates_.size()));
  rng_->sample_without_replacement(static_cast<std::uint32_t>(candidates_.size()), k,
                                   pick_scratch_);

  const bool ack_gated = cfg_->retransmit.enabled;
  for (auto idx : pick_scratch_) {
    const ProcessId target = candidates_[idx];
    auto msg = partials_pool_.acquire();
    msg->dline = dline_;
    std::vector<Hit>* pending = nullptr;
    if (ack_gated) {
      // Lossy-link mode: a send is not a hit until the target acks it. The
      // target stays in the needed set meanwhile, so the next iteration's
      // sampling naturally retransmits; overwriting (not appending) keeps the
      // pending list equal to the latest message's contents.
      pending = &pending_unacked_[target];
      pending->clear();
    }
    for (const Fragment* f : needed_lists_[needed_index_.find(target)->second]) {
      CONGOS_ASSERT_MSG(f->meta.dest.test(target),
                        "[GD:CONFIDENTIAL] target outside destination set");
      msg->fragments.push_back(*f);
      if (ack_gated) {
        pending->push_back(Hit{target, f->meta.key.rumor});
      } else {
        hitset_.insert(Hit{target, f->meta.key.rumor});
      }
    }
    out.send(sim::Envelope{
        self_, target, sim::ServiceTag{sim::ServiceKind::kGroupDistribution, partition_},
        std::move(msg)});
  }
}

void GroupDistributionService::on_partials_ack(Round /*now*/, ProcessId from) {
  auto it = pending_unacked_.find(from);
  if (it == pending_unacked_.end()) return;
  for (const auto& hit : it->second) hitset_.insert(hit);
  pending_unacked_.erase(it);
}

void GroupDistributionService::inject_share(Round now) {
  collaborators_.reset_all();
  if (!status_active_) return;
  collaborators_.set(self_);
  auto share = std::make_shared<HitSetShareBody>();
  share->dline = dline_;
  share->block = static_cast<std::uint64_t>(now / block_len_);
  share->from = self_;
  share->hits.assign(hitset_.begin(), hitset_.end());
  std::sort(share->hits.begin(), share->hits.end());
  if (hooks_.gossip_share) {
    hooks_.gossip_share(now, std::move(share),
                        now + static_cast<Round>(isqrt(static_cast<std::uint64_t>(dline_))));
  }
}

void GroupDistributionService::publish_report(Round now) {
  if (!status_active_ || hitset_.empty()) return;
  auto report = std::make_shared<DistributionReportBody>();
  report->reporter = self_;
  report->partition = partition_;
  report->group = my_group_;
  report->dline = dline_;
  report->hits.assign(hitset_.begin(), hitset_.end());
  std::sort(report->hits.begin(), report->hits.end());
  if (hooks_.all_gossip) {
    hooks_.all_gossip(now, std::move(report), now + block_len_ - 1);
  }
}

void GroupDistributionService::send_phase(Round now, sim::Sender& out) {
  const Round offset = now % block_len_;
  if (offset == 1) begin_block(now);  // round 1 waits for late fragments

  if (offset == block_len_ - 1) publish_report(now);

  if (offset == 0) return;
  const Round rel = offset - 1;  // iterations start at block round 2
  const Round iter_index = rel / iter_len_;
  if (iter_index >= iters_per_block_) return;
  const Round io = rel % iter_len_;

  if (io == 1) {
    distribute(now, out);
  } else if (io == 2) {
    inject_share(now);
  }
}

void GroupDistributionService::on_share(Round /*now*/, const HitSetShareBody& share) {
  collaborators_.set(share.from);
  for (const auto& h : share.hits) hitset_.insert(h);
}

}  // namespace congos::core
