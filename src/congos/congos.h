// Umbrella header: the full public API of the CONGOS library.
//
//   #include "congos/congos.h"
//
// brings in the core protocol (CongosProcess + configuration), the simulator
// substrate it runs on, the CRRI adversary toolkit, the auditors, and the
// scenario harness. Finer-grained includes remain available for users who
// want only a subsystem (e.g. just the XOR codec or the partitions).
#pragma once

#include "adversary/adversary.h"    // IWYU pragma: export
#include "adversary/patterns.h"     // IWYU pragma: export
#include "adversary/workload.h"     // IWYU pragma: export
#include "audit/confidentiality.h"  // IWYU pragma: export
#include "audit/qod.h"              // IWYU pragma: export
#include "coding/xor_share.h"       // IWYU pragma: export
#include "congos/config.h"          // IWYU pragma: export
#include "congos/congos_process.h"  // IWYU pragma: export
#include "congos/extensions.h"      // IWYU pragma: export
#include "gossip/continuous_gossip.h"  // IWYU pragma: export
#include "harness/scenario.h"       // IWYU pragma: export
#include "partition/bit_partition.h"     // IWYU pragma: export
#include "partition/random_partition.h"  // IWYU pragma: export
#include "sim/engine.h"             // IWYU pragma: export
#include "sim/trace.h"              // IWYU pragma: export
