// ConfidentialGossip service (Section 4.3, Fig. 2/8): the main protocol.
//
// On injection, a rumor is split per partition into one XOR fragment per
// group; the own-group fragment enters GroupGossip[l], the other fragments
// enter Proxy[l]. Fragments received back from GroupGossip[l]/Proxy[l] are
// fed into GroupDistribution[l]; fragments received as GroupDistribution
// "partials" are stored and reassembled (delivery to the user happens here).
// AllGossip distribution reports accumulate into a per-rumor confirmation
// matrix: once some partition shows every destination was sent every group's
// fragment, the rumor is confirmed. An unconfirmed rumor is sent *directly*
// to its destination set when its deadline expires - this fallback is what
// makes Quality of Delivery deterministic (Lemma 4).
#pragma once

#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/flat_set.h"
#include "common/pool.h"
#include "common/rng.h"
#include "congos/config.h"
#include "congos/fragment.h"
#include "congos/group_distribution.h"
#include "congos/proxy.h"
#include "partition/partition.h"
#include "sim/process.h"

namespace congos::core {

/// Progress counters exposed for tests and the E7 service-breakdown bench.
struct CgCounters {
  std::uint64_t injected = 0;
  std::uint64_t injected_direct = 0;   // below-threshold deadline: direct path
  std::uint64_t confirmed = 0;         // confirmed before the deadline
  std::uint64_t shoots = 0;            // fallback direct-send events (rumors)
  std::uint64_t shoot_messages = 0;    // fallback messages sent
  std::uint64_t delivered = 0;         // rumors delivered to this process
  std::uint64_t reassembled = 0;       // ... of which via fragment reassembly
};

class ConfidentialGossipService {
 public:
  struct Hooks {
    /// Inject a FragmentBody into GroupGossip[l] with dest = own group.
    std::function<void(PartitionIndex l, Round now, sim::PayloadPtr body,
                       Round deadline_at)>
        gossip_fragment;
    /// Access the Proxy[l] instance for a deadline class.
    std::function<ProxyService*(Round dline, PartitionIndex l)> proxy;
    /// Access the GroupDistribution[l] instance for a deadline class.
    std::function<GroupDistributionService*(Round dline, PartitionIndex l)> gd;
  };

  ConfidentialGossipService(ProcessId self, const CongosConfig* cfg,
                            const partition::PartitionSet* partitions, bool degenerate,
                            Rng* rng, sim::DeliveryListener* listener, Hooks hooks);

  void reset(Round now);

  void inject(Round now, const sim::Rumor& rumor);

  /// Flushes queued direct sends and fires the deadline fallback.
  void send_phase(Round now, sim::Sender& out);

  // -- inputs from the services ---------------------------------------------

  /// Own-group fragment delivered by GroupGossip[l].
  void on_group_fragment(Round now, PartitionIndex l, const Fragment& frag);
  /// Own-group fragments returned by Proxy[l] at block end.
  void on_proxy_return(Round now, PartitionIndex l, std::vector<Fragment> frags);
  /// GroupDistribution partials addressed to this process.
  void on_partials(Round now, const PartialsPayload& partials);
  /// Fallback direct rumor.
  void on_direct(Round now, const DirectRumorPayload& direct);
  /// Receipt ack for a direct send (retransmission mode): `from` confirmed
  /// the rumor, so the fallback stops re-firing towards it.
  void on_direct_ack(RumorUid uid, ProcessId from);
  /// AllGossip distribution report (confirmation metadata).
  void on_report(Round now, const DistributionReportBody& report);

  const CgCounters& counters() const { return counters_; }

 private:
  struct CacheEntry {
    sim::Rumor rumor;
    Round shoot_at = 0;
    /// Next round the deadline fallback fires. Without retransmission this
    /// equals shoot_at (the classic fire-once shoot); with it, the schedule
    /// of congos/retransmit.h starts early and re-fires until every
    /// destination acked or the rumor expired.
    Round next_shot = kNoRound;
    bool confirmed = false;
    /// Destinations that acknowledged a direct send (retransmission mode
    /// only; empty otherwise).
    DynamicBitset acked;
  };
  struct StoreKey {
    RumorUid uid;
    PartitionIndex partition = 0;
    friend bool operator==(const StoreKey&, const StoreKey&) = default;
  };
  struct StoreKeyHash {
    std::size_t operator()(const StoreKey& k) const noexcept {
      return FragmentKeyHash{}(FragmentKey{k.uid, k.partition, 0});
    }
  };
  struct StoreEntry {
    GroupIndex num_groups = 0;
    Round expires_at = 0;
    FlatMap<GroupIndex, coding::Bytes> parts;
  };
  /// Per-rumor confirmation matrix: partition x group -> destinations known
  /// to have been sent that group's fragment.
  using ConfirmMatrix = std::vector<std::vector<DynamicBitset>>;

  ProcessId self_;
  const CongosConfig* cfg_;
  const partition::PartitionSet* partitions_;
  bool degenerate_;
  Rng* rng_;
  sim::DeliveryListener* listener_;
  Hooks hooks_;

  FlatMap<RumorUid, CacheEntry> cache_;
  FlatMap<RumorUid, ConfirmMatrix> confirm_;
  FlatMap<StoreKey, StoreEntry, StoreKeyHash> store_;
  FlatSet<RumorUid> delivered_;
  std::vector<sim::Envelope> pending_direct_;
  PayloadPool<DirectRumorPayload> direct_pool_;
  CgCounters counters_;
  Round last_gc_ = 0;

  void deliver_local(Round now, RumorUid uid, const coding::Bytes& data,
                     bool reassembled);
  /// Queues direct sends to the rumor's destinations; `skip` (may be null)
  /// suppresses destinations that already acknowledged.
  void queue_direct(Round now, const sim::Rumor& rumor,
                    const DynamicBitset* skip = nullptr);
  /// Arms entry.next_shot per the retransmission schedule (or the classic
  /// fire-once shoot when retransmission is off).
  void arm_fallback(CacheEntry& entry, Round now);
  /// Fires one fallback attempt and advances/retires the schedule.
  void fire_fallback(CacheEntry& entry, Round now);
  bool all_destinations_acked(const CacheEntry& entry) const;
  void add_fragment_for_reassembly(Round now, const Fragment& frag);
  void check_confirmed(RumorUid uid);
  void gc(Round now);
};

}  // namespace congos::core
