// Deadline-aware retransmission schedule (DESIGN.md section 10).
//
// A transmission that must be acknowledged before an absolute `deadline`
// round is retried with gaps that halve towards the deadline: starting from
// a first attempt at deadline - 2^budget, the k-th retry fires at
// deadline - 2^(budget-k), i.e. ..., deadline-4, deadline-2, deadline-1.
// The schedule front-loads patience (early attempts have the whole remaining
// window to be confirmed through the normal pipeline) and back-loads urgency
// (the last retries are adjacent to the deadline), and the number of
// attempts a rumor actually gets is derived from its rounds-to-deadline:
// min(budget, log2(deadline - now)) + 1.
//
// Pure functions of (now, deadline, budget): no state, no RNG - the
// schedule is deterministic and identical on every replay.
#pragma once

#include <algorithm>

#include "common/types.h"

namespace congos::core {

/// Round of the first attempt: deadline - 2^budget, clamped to `now` (a
/// short deadline simply affords fewer retries).
inline Round retransmit_first(Round now, Round deadline, int budget) {
  const int shift = std::clamp(budget, 0, 62);
  const Round lead = Round{1} << shift;
  return std::max(now, deadline - lead);
}

/// Round of the attempt after one fired at `current`, halving the remaining
/// gap; kNoRound when the schedule is exhausted (gap <= 1).
inline Round retransmit_next(Round current, Round deadline) {
  const Round gap = deadline - current;
  if (gap <= 1) return kNoRound;
  return deadline - gap / 2;
}

}  // namespace congos::core
