#include "congos/proxy.h"

#include <algorithm>

#include "common/assert.h"
#include "common/math.h"

namespace congos::core {

ProxyService::ProxyService(ProcessId self, PartitionIndex l,
                           const partition::Partition* part, Round dline,
                           const CongosConfig* cfg, Rng* rng, Hooks hooks)
    : self_(self),
      partition_(l),
      part_(part),
      dline_(dline),
      block_len_(block_length(dline)),
      iter_len_(iteration_length(dline)),
      iters_per_block_(iterations_per_block(dline)),
      cfg_(cfg),
      rng_(rng),
      hooks_(std::move(hooks)),
      my_group_(part->group_of(self)),
      failed_proxies_(part->n()),
      collaborators_(part->n()),
      acks_received_(part->n()) {
  CONGOS_ASSERT(part_ != nullptr && cfg_ != nullptr && rng_ != nullptr);
}

void ProxyService::reset(Round /*now*/) {
  waiting_.clear();
  my_rumors_.clear();
  group_satisfied_.clear();
  status_active_ = false;
  failed_proxies_.reset_all();
  collaborators_.reset_all();
  outstanding_.clear();
  acks_received_.reset_all();
  proxy_buffer_.clear();
  buffered_keys_.clear();
  requesters_to_ack_.clear();
  partial_rumors_.clear();
  partial_keys_.clear();
}

void ProxyService::enqueue(Round now, Fragment frag) {
  CONGOS_ASSERT_MSG(frag.meta.key.group != my_group_,
                    "own-group fragments go through GroupGossip, not the proxy");
  if (frag.meta.expires_at < now) return;
  waiting_.push_back(std::move(frag));
}

void ProxyService::begin_block(Round now) {
  // Return last block's collected partials to ConfidentialGossip first (the
  // outline does this "at the end of the last round of a block"; doing it at
  // the start of the next block is the same point in protocol time, before
  // GroupDistribution's collection in round 2).
  if (!partial_rumors_.empty() && hooks_.return_partials) {
    hooks_.return_partials(now, std::move(partial_rumors_));
  }
  partial_rumors_.clear();
  partial_keys_.clear();
  proxy_buffer_.clear();
  buffered_keys_.clear();
  requesters_to_ack_.clear();
  outstanding_.clear();
  acks_received_.reset_all();
  failed_proxies_.reset_all();
  group_satisfied_.clear();
  my_rumors_.clear();
  status_active_ = false;

  // Activation requires dline/4 rounds of continuous uptime (Fig. 9).
  if (now - hooks_.alive_since() < block_len_) return;

  for (auto& frag : waiting_) {
    if (frag.meta.expires_at < now) continue;
    my_rumors_[frag.meta.key.group].push_back(std::move(frag));
  }
  waiting_.clear();
  if (my_rumors_.empty()) return;
  status_active_ = true;
  for (const auto& [g, _] : my_rumors_) group_satisfied_[g] = false;
  // Initially every group member is presumed to collaborate (Fig. 9 line 21).
  collaborators_ = part_->members(my_group_);
}

void ProxyService::settle_acks() {
  for (auto& [group, targets] : outstanding_) {
    bool any_ack = false;
    for (ProcessId t : targets) {
      if (acks_received_.test(t)) {
        any_ack = true;
      } else {
        failed_proxies_.set(t);
      }
    }
    if (any_ack) group_satisfied_[group] = true;
  }
  outstanding_.clear();
  acks_received_.reset_all();
  if (status_active_) {
    bool all = true;
    for (const auto& [g, sat] : group_satisfied_) all = all && sat;
    // Every fragment group has a confirmed proxy: our work is done for this
    // block (Fig. 9: status <- idle on proxy-ack).
    if (all) status_active_ = false;
  }
}

void ProxyService::send_requests(Round now, sim::Sender& out) {
  if (!status_active_) return;
  const std::uint64_t fanout =
      service_fanout(part_->n(), dline_, collaborators_.count(), *cfg_);
  // Iterate groups in sorted order: each unsatisfied group consumes RNG
  // draws, so the iteration order is part of the deterministic trace and
  // must not depend on hash-container bucket layout.
  request_groups_.clear();
  for (const auto& [g, _] : my_rumors_) request_groups_.push_back(g);
  std::sort(request_groups_.begin(), request_groups_.end());
  for (const GroupIndex group : request_groups_) {
    auto& frags = my_rumors_.find(group)->second;
    if (group_satisfied_[group]) continue;
    // Drop expired fragments.
    std::erase_if(frags, [now](const Fragment& f) { return f.meta.expires_at < now; });
    if (frags.empty()) {
      group_satisfied_[group] = true;
      continue;
    }
    DynamicBitset pool = part_->members(group) - failed_proxies_;
    if (pool.none()) pool = part_->members(group);  // everyone failed: retry all
    auto candidates = pool.to_vector();
    const auto k = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(fanout, candidates.size()));
    const auto picks = rng_->sample_without_replacement(
        static_cast<std::uint32_t>(candidates.size()), k);
    auto req = req_pool_.acquire();
    req->dline = dline_;
    req->fragments = frags;
    auto& targets = outstanding_[group];
    for (auto idx : picks) {
      const ProcessId target = candidates[idx];
      CONGOS_ASSERT_MSG(part_->group_of(target) == group,
                        "[PROXY:CONFIDENTIAL] target outside fragment group");
      out.send(sim::Envelope{self_, target,
                             sim::ServiceTag{sim::ServiceKind::kProxy, partition_}, req});
      targets.push_back(target);
    }
  }
}

void ProxyService::resend_requests(Round now, sim::Sender& out) {
  if (!status_active_ || outstanding_.empty()) return;
  request_groups_.clear();
  for (const auto& [g, _] : outstanding_) request_groups_.push_back(g);
  std::sort(request_groups_.begin(), request_groups_.end());
  for (const GroupIndex group : request_groups_) {
    if (group_satisfied_[group]) continue;
    auto rit = my_rumors_.find(group);
    if (rit == my_rumors_.end()) continue;
    auto& frags = rit->second;
    std::erase_if(frags, [now](const Fragment& f) { return f.meta.expires_at < now; });
    if (frags.empty()) continue;
    auto req = req_pool_.acquire();
    req->dline = dline_;
    req->fragments = frags;
    for (const ProcessId target : outstanding_.find(group)->second) {
      if (acks_received_.test(target)) continue;  // already confirmed receipt
      CONGOS_ASSERT_MSG(part_->group_of(target) == group,
                        "[PROXY:CONFIDENTIAL] target outside fragment group");
      out.send(sim::Envelope{self_, target,
                             sim::ServiceTag{sim::ServiceKind::kProxy, partition_}, req});
    }
  }
}

void ProxyService::inject_share(Round now) {
  // A process participates in the intra-group exchange when it has its own
  // cross-group fragments in flight (status active) or is holding fragments
  // as a proxy for this group ("the potential proxies then participate in
  // GroupGossip[l]", Section 4.4).
  const bool participating = status_active_ || !proxy_buffer_.empty();
  collaborators_.reset_all();
  if (!participating) return;
  collaborators_.set(self_);
  auto share = std::make_shared<ProxyShareBody>();
  share->dline = dline_;
  share->block = static_cast<std::uint64_t>(now / block_len_);
  share->from = self_;
  for (const auto& f : proxy_buffer_) {
    if (f.meta.expires_at >= now) share->proxied.push_back(f);
  }
  share->failed_proxies = failed_proxies_.to_vector();
  if (hooks_.gossip_share) {
    hooks_.gossip_share(now, std::move(share),
                        now + static_cast<Round>(isqrt(static_cast<std::uint64_t>(dline_))));
  }
}

void ProxyService::send_acks(Round /*now*/, sim::Sender& out) {
  if (requesters_to_ack_.empty()) return;
  std::sort(requesters_to_ack_.begin(), requesters_to_ack_.end());
  requesters_to_ack_.erase(
      std::unique(requesters_to_ack_.begin(), requesters_to_ack_.end()),
      requesters_to_ack_.end());
  auto ack = ack_pool_.acquire();
  ack->dline = dline_;
  for (ProcessId r : requesters_to_ack_) {
    out.send(sim::Envelope{self_, r,
                           sim::ServiceTag{sim::ServiceKind::kProxy, partition_}, ack});
  }
  requesters_to_ack_.clear();
}

void ProxyService::send_phase(Round now, sim::Sender& out) {
  const Round offset = now % block_len_;
  if (offset == 0) begin_block(now);

  const Round iter_index = offset / iter_len_;
  if (iter_index >= iters_per_block_) return;  // tail rounds of the block
  const Round io = offset % iter_len_;

  if (io == 0) {
    settle_acks();  // evaluate the previous iteration's acknowledgements
    send_requests(now, out);
  } else if (io == iter_len_ - 1) {
    send_acks(now, out);
  } else if (cfg_->retransmit.enabled && io == iter_len_ / 2) {
    resend_requests(now, out);
  }
  if (io == 1) inject_share(now);
}

void ProxyService::on_request(Round now, const ProxyRequestPayload& req,
                              ProcessId from) {
  for (const auto& frag : req.fragments) {
    CONGOS_ASSERT_MSG(frag.meta.key.group == my_group_,
                      "proxy request fragment not for this group");
    if (frag.meta.expires_at < now) continue;
    if (buffered_keys_.insert(frag.meta.key).second) {
      proxy_buffer_.push_back(frag);
    }
  }
  requesters_to_ack_.push_back(from);
}

void ProxyService::on_ack(Round /*now*/, ProcessId from) { acks_received_.set(from); }

void ProxyService::on_share(Round now, const ProxyShareBody& share) {
  for (ProcessId f : share.failed_proxies) failed_proxies_.set(f);
  collaborators_.set(share.from);
  for (const auto& frag : share.proxied) {
    CONGOS_ASSERT_MSG(frag.meta.key.group == my_group_,
                      "shared fragment not for this group");
    if (frag.meta.expires_at < now) continue;
    if (partial_keys_.insert(frag.meta.key).second) {
      partial_rumors_.push_back(frag);
    }
  }
}

}  // namespace congos::core
