// Small integer/float helpers shared across subsystems, in particular the
// paper's fan-out formulas (powers n^{1 + 48/sqrt(dline)} and friends).
#pragma once

#include <cstdint>

namespace congos {

/// floor(log2(x)); x must be > 0.
int ilog2_floor(std::uint64_t x);

/// ceil(log2(x)); x must be > 0.
int ilog2_ceil(std::uint64_t x);

/// Largest power of two <= x; x must be > 0.
std::uint64_t floor_pow2(std::uint64_t x);

bool is_pow2(std::uint64_t x);

/// ceil(a / b) for positive integers.
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b);

/// n^e for real exponent e >= 0, rounded up, saturating at `cap`.
/// This evaluates the paper's n^{48/sqrt(dline)}-style factors.
std::uint64_t pow_real_ceil(std::uint64_t n, double exponent, std::uint64_t cap);

/// Natural log of n, floored at 1.0 so it can be used as a multiplicative
/// "log n" factor even for tiny n.
double log_factor(std::uint64_t n);

/// Integer square root: floor(sqrt(x)).
std::uint64_t isqrt(std::uint64_t x);

}  // namespace congos
