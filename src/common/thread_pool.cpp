#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace congos {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(threads, 1);
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::drain_shards(ShardTask& task, std::size_t count) {
  for (;;) {
    const std::size_t i = shard_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    task.run_shard(i);
    shard_done_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::run_shards(ShardTask& task, std::size_t count) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shard_task_ = &task;
    shard_count_ = count;
    shard_next_.store(0, std::memory_order_relaxed);
    shard_done_.store(0, std::memory_order_relaxed);
    ++shard_epoch_;
  }
  work_cv_.notify_all();
  // The caller is a full participant: with k workers this gives k+1 compute
  // threads and the calling thread never just blocks on the barrier.
  drain_shards(task, count);
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Wait for the last shard AND for every adopted worker to leave the
    // claim loop: a worker that adopted the batch but lost every claim race
    // must not still be touching the claim counter when the next batch
    // resets it.
    idle_cv_.wait(lock, [this, count] {
      return shard_done_.load(std::memory_order_acquire) == count &&
             shard_workers_ == 0;
    });
    shard_task_ = nullptr;
    shard_count_ = 0;
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::function<void()> job;
    ShardTask* shards = nullptr;
    std::size_t shard_count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_epoch] {
        return stop_ || !queue_.empty() ||
               (shard_task_ != nullptr && shard_epoch_ != seen_epoch);
      });
      if (shard_task_ != nullptr && shard_epoch_ != seen_epoch) {
        seen_epoch = shard_epoch_;
        shards = shard_task_;
        shard_count = shard_count_;
        ++shard_workers_;
      } else if (!queue_.empty()) {
        job = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
      } else {
        return;  // stop_ set and nothing left to do
      }
    }
    if (shards != nullptr) {
      drain_shards(*shards, shard_count);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --shard_workers_;
        idle_cv_.notify_all();  // run_shards() re-checks its predicate
      }
      continue;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace congos
