#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace congos {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(threads, 1);
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace congos
