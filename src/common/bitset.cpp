#include "common/bitset.h"

namespace congos {

namespace {
constexpr std::size_t word_count(std::size_t n) { return (n + 63) / 64; }
}  // namespace

DynamicBitset::DynamicBitset(std::size_t n, bool value)
    : size_(n), words_(word_count(n), value ? ~0ull : 0ull) {
  if (value && n % 64 != 0 && !words_.empty()) {
    words_.back() = (1ull << (n % 64)) - 1;
  }
}

void DynamicBitset::set(std::size_t i) {
  CONGOS_ASSERT(i < size_);
  words_[i / 64] |= 1ull << (i % 64);
}

void DynamicBitset::reset(std::size_t i) {
  CONGOS_ASSERT(i < size_);
  words_[i / 64] &= ~(1ull << (i % 64));
}

void DynamicBitset::assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

bool DynamicBitset::test(std::size_t i) const {
  CONGOS_ASSERT(i < size_);
  return (words_[i / 64] >> (i % 64)) & 1u;
}

void DynamicBitset::set_all() {
  for (auto& w : words_) w = ~0ull;
  if (size_ % 64 != 0 && !words_.empty()) words_.back() = (1ull << (size_ % 64)) - 1;
}

void DynamicBitset::reset_all() {
  for (auto& w : words_) w = 0;
}

std::size_t DynamicBitset::count() const {
  std::size_t c = 0;
  for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
  return c;
}

bool DynamicBitset::any() const {
  for (auto w : words_)
    if (w != 0) return true;
  return false;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::or_complement(const DynamicBitset& o) {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= ~o.words_[i];
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (1ull << (size_ % 64)) - 1;
  }
  return *this;
}

bool DynamicBitset::contains_all(const DynamicBitset& o) const {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((o.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& o) const {
  check_compatible(o);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & o.words_[i]) != 0) return true;
  }
  return false;
}

std::vector<std::uint32_t> DynamicBitset::to_vector() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for_each([&](std::uint32_t i) { out.push_back(i); });
  return out;
}

std::size_t DynamicBitset::find_first() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0)
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
  }
  return size_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const {
  ++i;
  if (i >= size_) return size_;
  std::size_t w = i / 64;
  std::uint64_t bits = words_[w] & (~0ull << (i % 64));
  while (true) {
    if (bits != 0) return w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
    if (++w >= words_.size()) return size_;
    bits = words_[w];
  }
}

DynamicBitset DynamicBitset::from_indices(std::size_t n,
                                          const std::vector<std::uint32_t>& idx) {
  DynamicBitset b(n);
  for (auto i : idx) b.set(i);
  return b;
}

}  // namespace congos
