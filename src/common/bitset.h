// DynamicBitset: a compact set over a dense id universe [0, n).
//
// Used throughout for destination sets, group membership, hit sets and
// knowledge tracking. Unlike std::vector<bool> it exposes word-level
// operations (union/intersection/superset tests) which the auditors rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace congos {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t n, bool value = false);

  std::size_t size() const { return size_; }
  bool empty_universe() const { return size_ == 0; }

  /// Serialized size in bytes (one bit per universe element).
  std::size_t byte_size() const { return (size_ + 7) / 8; }

  void set(std::size_t i);
  void reset(std::size_t i);
  void assign(std::size_t i, bool v);
  bool test(std::size_t i) const;
  bool operator[](std::size_t i) const { return test(i); }

  void set_all();
  void reset_all();

  /// Number of set bits.
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }
  bool all() const { return count() == size_; }

  DynamicBitset& operator|=(const DynamicBitset& o);
  DynamicBitset& operator&=(const DynamicBitset& o);
  DynamicBitset& operator-=(const DynamicBitset& o);  // set difference

  /// *this |= ~o, word-at-a-time (tail bits beyond size() stay clear). The
  /// engine uses this to mark every dead process in the receive filter
  /// without touching per-process state: in_filtered |= ~alive.
  DynamicBitset& or_complement(const DynamicBitset& o);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) { return a |= b; }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) { return a &= b; }
  friend DynamicBitset operator-(DynamicBitset a, const DynamicBitset& b) { return a -= b; }

  friend bool operator==(const DynamicBitset&, const DynamicBitset&) = default;

  /// True iff every bit of `o` is also set in *this.
  bool contains_all(const DynamicBitset& o) const;
  /// True iff *this and `o` share at least one set bit.
  bool intersects(const DynamicBitset& o) const;

  /// Indices of set bits in increasing order.
  std::vector<std::uint32_t> to_vector() const;

  /// First set bit index, or size() when none.
  std::size_t find_first() const;
  /// Next set bit strictly after `i`, or size() when none.
  std::size_t find_next(std::size_t i) const;

  /// Iterate set bits without materializing a vector.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<std::uint32_t>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  /// Iterate *clear* bits (indices in [0, size()) whose bit is 0) in
  /// increasing order. Cost is proportional to words plus zeros visited, so
  /// sparse complements (e.g. the few dead processes of an engine round) are
  /// cheap.
  template <typename Fn>
  void for_each_zero(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = ~words_[w];
      if (w == words_.size() - 1 && size_ % 64 != 0) {
        bits &= (1ull << (size_ % 64)) - 1;  // mask tail beyond the universe
      }
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<std::uint32_t>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  static DynamicBitset from_indices(std::size_t n, const std::vector<std::uint32_t>& idx);
  static DynamicBitset full(std::size_t n) { return DynamicBitset(n, true); }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;

  void check_compatible(const DynamicBitset& o) const {
    CONGOS_ASSERT_MSG(size_ == o.size_, "bitset universe mismatch");
  }
};

}  // namespace congos
