#include "common/rng.h"

#include <cmath>

namespace congos {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CONGOS_ASSERT(bound > 0);
  // Lemire's method with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CONGOS_ASSERT(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform01() {
  // 53 random bits into the mantissa.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

unsigned Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  // Knuth's product method needs exp(-lambda) > 0; for lambda beyond ~745
  // the limit underflows to zero and the loop only stops once the running
  // product denormal-flushes, returning a bogus ~1100 regardless of lambda.
  // Poisson is additive, so split large lambda into chunks that stay well
  // inside the safe range and sum independent draws.
  constexpr double kChunk = 500.0;
  unsigned total = 0;
  while (lambda > kChunk) {
    total += poisson_knuth(kChunk);
    lambda -= kChunk;
  }
  return total + poisson_knuth(lambda);
}

unsigned Rng::poisson_knuth(double lambda) {
  const double limit = std::exp(-lambda);
  unsigned k = 0;
  double prod = uniform01();
  while (prod > limit) {
    ++k;
    prod *= uniform01();
  }
  return k;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  std::vector<std::uint32_t> out;
  sample_without_replacement(n, k, out);
  return out;
}

void Rng::sample_without_replacement(std::uint32_t n, std::uint32_t k,
                                     std::vector<std::uint32_t>& out) {
  CONGOS_ASSERT(k <= n);
  // Floyd's algorithm: expected O(k), no O(n) allocation (and none at all
  // once `out` has capacity k).
  out.clear();
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(next_below(j + 1));
    bool present = false;
    for (auto v : out) {
      if (v == t) {
        present = true;
        break;
      }
    }
    out.push_back(present ? j : t);
  }
}

Rng Rng::fork() { return Rng(next()); }

void Rng::fill_bytes(std::uint8_t* out, std::size_t len) {
  std::size_t i = 0;
  while (i + 8 <= len) {
    const std::uint64_t v = next();
    for (int b = 0; b < 8; ++b) out[i + static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(v >> (8 * b));
    i += 8;
  }
  if (i < len) {
    const std::uint64_t v = next();
    for (int b = 0; i < len; ++i, ++b) out[i] = static_cast<std::uint8_t>(v >> (8 * b));
  }
}

}  // namespace congos
