#include "common/strings.h"

#include <cstdio>

namespace congos {

std::string join(const std::vector<std::uint32_t>& v, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += sep;
    out += std::to_string(v[i]);
  }
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace congos
