// Always-on invariant checks.
//
// The simulator is a correctness instrument: a silently-wrong simulation is
// worse than a crash, so invariant checks stay on in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace congos::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "CONGOS_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}
}  // namespace congos::detail

#define CONGOS_ASSERT(expr)                                                \
  do {                                                                     \
    if (!(expr)) ::congos::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define CONGOS_ASSERT_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) ::congos::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
