// Minimal command-line flag parsing for the CLI tools.
//
// Supported forms: --key=value, --key value, --switch (boolean true),
// plus bare positional arguments. No registration step: callers query by
// name with a default, and can list unknown keys to reject typos.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace congos {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// --flag and --flag=true/1/yes are true; --flag=false/0/no is false.
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys present on the command line but not in `known` (typo detection).
  std::vector<std::string> unknown_keys(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace congos
