// Deterministic open-addressing hash set. See flat_map.h for the design
// rationale (dense storage + robin-hood index, insertion-order iteration,
// value-based hashing only). Shares detail::FlatIndex with FlatMap.
//
// Iterators are const (keys are immutable once inserted) and invalidated by
// rehash and by erase() (swap-with-last).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_map.h"

namespace congos {

template <typename K, typename Hash = FlatHash<K>>
class FlatSet {
 public:
  using value_type = K;
  using iterator = typename std::vector<K>::const_iterator;
  using const_iterator = iterator;

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  void clear() {
    entries_.clear();
    index_.clear();
  }

  void reserve(std::size_t n) {
    entries_.reserve(n);
    index_.reserve(n);
  }

  std::pair<const_iterator, bool> insert(const K& key) {
    const std::uint64_t h = hash_of(key);
    const std::uint32_t e = index_.find(h, key_eq(key));
    if (e != detail::FlatIndex::kNoEntry) {
      return {entries_.cbegin() + e, false};
    }
    entries_.push_back(key);
    index_.insert(h, static_cast<std::uint32_t>(entries_.size() - 1));
    return {entries_.cend() - 1, true};
  }

  bool contains(const K& key) const {
    return index_.find(hash_of(key), key_eq(key)) != detail::FlatIndex::kNoEntry;
  }

  const_iterator find(const K& key) const {
    const std::uint32_t e = index_.find(hash_of(key), key_eq(key));
    return e == detail::FlatIndex::kNoEntry ? entries_.cend() : entries_.cbegin() + e;
  }

  /// Swap-with-last removal; returns an iterator at the same position.
  const_iterator erase(const_iterator pos) {
    const auto idx = static_cast<std::size_t>(pos - entries_.cbegin());
    index_.erase(hash_of(entries_[idx]), static_cast<std::uint32_t>(idx));
    const std::size_t last = entries_.size() - 1;
    if (idx != last) {
      index_.reindex(hash_of(entries_[last]), static_cast<std::uint32_t>(last),
                     static_cast<std::uint32_t>(idx));
      entries_[idx] = std::move(entries_[last]);
    }
    entries_.pop_back();
    return entries_.cbegin() + idx;
  }

  std::size_t erase(const K& key) {
    const auto it = find(key);
    if (it == entries_.cend()) return 0;
    erase(it);
    return 1;
  }

 private:
  std::uint64_t hash_of(const K& key) const {
    return static_cast<std::uint64_t>(Hash{}(key));
  }
  auto key_eq(const K& key) const {
    return [this, &key](std::uint32_t e) { return entries_[e] == key; };
  }

  std::vector<K> entries_;
  detail::FlatIndex index_;
};

}  // namespace congos
