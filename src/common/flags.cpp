#include "common/flags.h"

#include <algorithm>
#include <cstdlib>

namespace congos {

namespace {
bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}
}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // boolean switch.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.contains(name); }

std::string Flags::get(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

std::vector<std::string> Flags::unknown_keys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [key, _] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      out.push_back(key);
    }
  }
  return out;
}

}  // namespace congos
