// Deterministic open-addressing hash containers (robin-hood indexing over
// dense storage).
//
// The simulator's determinism contract (DESIGN.md section 9) forbids any
// observable dependence on std::unordered_map bucket order: a different
// standard library (or a different load factor) would reorder iteration and
// hence reorder RNG draws and message emission. FlatMap stores its entries in
// a plain vector - iteration order is insertion order, identical on every
// platform - and maintains a separate robin-hood index of (hash, entry-slot)
// pairs for O(1) lookup. Keys are hashed by value only (never by address),
// so a (seed, config) pair still fully determines an execution.
//
// Performance: entries are contiguous (one cache line fetches several), the
// index stores 12-byte slots probed linearly, and erase() is swap-with-last,
// so the hot per-round loops (rumor dedup, ack bookkeeping, hitset
// membership) touch a fraction of the cache lines a node-based
// unordered_map does. This is what "allocation-free steady state" rides on:
// after warm-up neither the entry vector nor the index reallocates.
//
// Deviations from std::unordered_map, chosen for the hot path:
//   * references and iterators are invalidated by rehash AND by erase()
//     (swap-with-last moves the tail entry); do not hold them across
//     mutations;
//   * erase(it) returns an iterator at the *same position* (the swapped-in
//     tail entry), so the `it = m.erase(it)` sweep idiom works unchanged;
//   * value_type is pair<K, V> (non-const K) so entries can be moved;
//   * emplace() behaves like try_emplace (no effect when the key exists).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace congos {

/// Default hasher: a strong 64-bit finalizer for integral keys (identity
/// hashes would make robin-hood probe lengths degenerate on dense ids);
/// everything else delegates to std::hash, which this codebase only
/// specializes with deterministic value-based functions.
template <typename K, typename = void>
struct FlatHash {
  std::size_t operator()(const K& k) const noexcept { return std::hash<K>{}(k); }
};

template <typename K>
struct FlatHash<K, std::enable_if_t<std::is_integral_v<K>>> {
  std::size_t operator()(K k) const noexcept {
    auto x = static_cast<std::uint64_t>(k);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

namespace detail {

/// The shared robin-hood index: maps a 64-bit hash to a 32-bit slot in the
/// owner's dense entry vector. Knows nothing about keys; the owner resolves
/// hash collisions through an equality callback.
class FlatIndex {
 public:
  static constexpr std::uint32_t kNoEntry = 0xFFFFFFFFu;

  std::size_t size() const { return size_; }

  void clear() {
    if (size_ != 0) slots_.assign(slots_.size(), Slot{});
    size_ = 0;
  }

  template <typename Eq>
  std::uint32_t find(std::uint64_t hash, Eq&& eq) const {
    if (slots_.empty()) return kNoEntry;
    std::size_t i = hash & mask_;
    std::size_t dist = 0;
    while (true) {
      const Slot& s = slots_[i];
      if (s.entry == kNoEntry) return kNoEntry;
      // Robin-hood invariant: once we probe further than a resident slot's
      // own distance, the key cannot be in the table.
      if (probe_distance(s.hash, i) < dist) return kNoEntry;
      if (s.hash == hash && eq(s.entry)) return s.entry;
      i = (i + 1) & mask_;
      ++dist;
    }
  }

  /// Insert a (hash -> entry) mapping; the caller guarantees the key is not
  /// already present.
  void insert(std::uint64_t hash, std::uint32_t entry) {
    if ((size_ + 1) * 4 > slots_.size() * 3) grow(slots_.empty() ? 16 : slots_.size() * 2);
    insert_no_grow(hash, entry);
    ++size_;
  }

  /// Remove the (hash, entry) mapping; the caller guarantees it is present.
  void erase(std::uint64_t hash, std::uint32_t entry) {
    std::size_t i = hash & mask_;
    while (!(slots_[i].hash == hash && slots_[i].entry == entry)) i = (i + 1) & mask_;
    // Backward-shift deletion keeps probe chains tight (no tombstones).
    std::size_t next = (i + 1) & mask_;
    while (slots_[next].entry != kNoEntry && probe_distance(slots_[next].hash, next) > 0) {
      slots_[i] = slots_[next];
      i = next;
      next = (next + 1) & mask_;
    }
    slots_[i] = Slot{};
    --size_;
  }

  /// The entry at `old_entry` moved to `new_entry` (swap-with-last erase).
  void reindex(std::uint64_t hash, std::uint32_t old_entry, std::uint32_t new_entry) {
    std::size_t i = hash & mask_;
    while (!(slots_[i].hash == hash && slots_[i].entry == old_entry)) i = (i + 1) & mask_;
    slots_[i].entry = new_entry;
  }

  void reserve(std::size_t n) {
    std::size_t cap = slots_.empty() ? 16 : slots_.size();
    while (n * 4 > cap * 3) cap *= 2;
    if (cap > slots_.size()) grow(cap);
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t entry = kNoEntry;
  };

  std::size_t probe_distance(std::uint64_t hash, std::size_t slot) const {
    return (slot - (hash & mask_)) & mask_;
  }

  void insert_no_grow(std::uint64_t hash, std::uint32_t entry) {
    std::size_t i = hash & mask_;
    std::size_t dist = 0;
    while (true) {
      Slot& s = slots_[i];
      if (s.entry == kNoEntry) {
        s.hash = hash;
        s.entry = entry;
        return;
      }
      const std::size_t resident = probe_distance(s.hash, i);
      if (resident < dist) {
        // Rob the rich: displace the resident with the shorter probe chain.
        std::swap(s.hash, hash);
        std::swap(s.entry, entry);
        dist = resident;
      }
      i = (i + 1) & mask_;
      ++dist;
    }
  }

  void grow(std::size_t new_cap) {
    CONGOS_ASSERT((new_cap & (new_cap - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (const Slot& s : old) {
      if (s.entry != kNoEntry) insert_no_grow(s.hash, s.entry);
    }
  }

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace detail

template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  void clear() {
    entries_.clear();
    index_.clear();
  }

  void reserve(std::size_t n) {
    entries_.reserve(n);
    index_.reserve(n);
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    const std::uint64_t h = hash_of(key);
    const std::uint32_t e = index_.find(h, key_eq(key));
    if (e != detail::FlatIndex::kNoEntry) {
      return {entries_.begin() + e, false};
    }
    entries_.emplace_back(std::piecewise_construct, std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    index_.insert(h, static_cast<std::uint32_t>(entries_.size() - 1));
    return {entries_.end() - 1, true};
  }

  /// Like try_emplace: no effect when the key already exists (matches how
  /// every call site uses unordered_map::emplace).
  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    return try_emplace(key, std::forward<Args>(args)...);
  }

  V& operator[](const K& key) { return try_emplace(key).first->second; }

  iterator find(const K& key) {
    const std::uint32_t e = index_.find(hash_of(key), key_eq(key));
    return e == detail::FlatIndex::kNoEntry ? entries_.end() : entries_.begin() + e;
  }
  const_iterator find(const K& key) const {
    const std::uint32_t e = index_.find(hash_of(key), key_eq(key));
    return e == detail::FlatIndex::kNoEntry ? entries_.end() : entries_.begin() + e;
  }

  bool contains(const K& key) const {
    return index_.find(hash_of(key), key_eq(key)) != detail::FlatIndex::kNoEntry;
  }

  /// Swap-with-last removal; returns an iterator at the same position (now
  /// holding the former tail entry, or end()), so `it = m.erase(it)` sweeps
  /// visit every entry exactly once.
  iterator erase(const_iterator pos) {
    const auto idx = static_cast<std::size_t>(pos - entries_.cbegin());
    index_.erase(hash_of(entries_[idx].first), static_cast<std::uint32_t>(idx));
    const std::size_t last = entries_.size() - 1;
    if (idx != last) {
      index_.reindex(hash_of(entries_[last].first), static_cast<std::uint32_t>(last),
                     static_cast<std::uint32_t>(idx));
      entries_[idx] = std::move(entries_[last]);
    }
    entries_.pop_back();
    return entries_.begin() + idx;
  }

  std::size_t erase(const K& key) {
    const auto it = find(key);
    if (it == entries_.end()) return 0;
    erase(it);
    return 1;
  }

 private:
  std::uint64_t hash_of(const K& key) const {
    return static_cast<std::uint64_t>(Hash{}(key));
  }
  auto key_eq(const K& key) const {
    return [this, &key](std::uint32_t e) { return entries_[e].first == key; };
  }

  std::vector<value_type> entries_;
  detail::FlatIndex index_;
};

}  // namespace congos
