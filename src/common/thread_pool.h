// A fixed-size thread pool for embarrassingly parallel work.
//
// Two modes of use (see DESIGN.md sections 6 and 12):
//   * submit(): queued type-erased jobs, used by SweepRunner to run
//     *independent* scenario executions — each with its own engine, RNG and
//     auditors — across the machine.
//   * run_shards(): a fork-join primitive for deterministic intra-round
//     parallelism inside one engine. Unlike submit() it is allocation-free
//     (no std::function, no queue nodes), which the zero-alloc steady-state
//     contract of the round hot path requires.
// Jobs must not touch shared mutable state unless they synchronize it
// themselves.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace congos {

/// A batch of independently runnable shards, executed by
/// ThreadPool::run_shards. A plain virtual interface rather than
/// std::function: shard dispatch runs every round on the engine hot path and
/// must not allocate.
class ShardTask {
 public:
  virtual ~ShardTask() = default;
  virtual void run_shard(std::size_t shard) = 0;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1). Workers idle until jobs are
  /// submitted and are joined by the destructor after the queue drains.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a job. Safe to call from any thread, including pool workers.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished (queue empty and no job
  /// in flight). The pool stays usable afterwards.
  void wait_idle();

  /// Runs task.run_shard(i) for every i in [0, count) across the workers
  /// *and the calling thread*, returning when all shards finished. Shards
  /// are claimed dynamically (atomic counter), so callers may pass more
  /// shards than threads for load balance; which thread runs which shard is
  /// unspecified and must not affect results. Allocation-free: safe on the
  /// zero-alloc round hot path. Must not be called from inside the pool
  /// (a worker or another run_shards), and not concurrently with submit()
  /// jobs that expect the pool to themselves.
  void run_shards(ShardTask& task, std::size_t count);

 private:
  void worker_loop();
  /// Claims and runs shards until the current batch is exhausted.
  void drain_shards(ShardTask& task, std::size_t count);

  std::mutex mu_;
  std::condition_variable work_cv_;  // wakes workers: job/shards available or stop
  std::condition_variable idle_cv_;  // wakes wait_idle()/run_shards(): drained
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;

  // run_shards() state: one batch at a time. `shard_epoch_` (guarded by mu_)
  // tells sleeping workers a fresh batch exists; the claim counter and the
  // done counter are atomics so the hot claim loop never takes the lock.
  ShardTask* shard_task_ = nullptr;   // guarded by mu_
  std::size_t shard_count_ = 0;       // guarded by mu_
  std::uint64_t shard_epoch_ = 0;     // guarded by mu_
  std::size_t shard_workers_ = 0;     // workers inside the batch; guarded by mu_
  std::atomic<std::size_t> shard_next_{0};
  std::atomic<std::size_t> shard_done_{0};

  std::vector<std::thread> workers_;
};

}  // namespace congos
