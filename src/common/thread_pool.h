// A fixed-size thread pool for embarrassingly parallel work.
//
// The simulation engine itself is strictly single-threaded (see DESIGN.md
// section 6 "Threading model"); the pool exists so that *independent*
// scenario executions — each with its own engine, RNG and auditors — can
// saturate the machine. Jobs must not touch shared mutable state unless they
// synchronize it themselves.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace congos {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1). Workers idle until jobs are
  /// submitted and are joined by the destructor after the queue drains.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a job. Safe to call from any thread, including pool workers.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished (queue empty and no job
  /// in flight). The pool stays usable afterwards.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // wakes workers: job available or stop
  std::condition_variable idle_cv_;  // wakes wait_idle(): everything drained
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace congos
