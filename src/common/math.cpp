#include "common/math.h"

#include <cmath>

#include "common/assert.h"

namespace congos {

int ilog2_floor(std::uint64_t x) {
  CONGOS_ASSERT(x > 0);
  return 63 - __builtin_clzll(x);
}

int ilog2_ceil(std::uint64_t x) {
  CONGOS_ASSERT(x > 0);
  const int f = ilog2_floor(x);
  return (x == (1ull << f)) ? f : f + 1;
}

std::uint64_t floor_pow2(std::uint64_t x) {
  CONGOS_ASSERT(x > 0);
  return 1ull << ilog2_floor(x);
}

bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  CONGOS_ASSERT(b > 0);
  return (a + b - 1) / b;
}

std::uint64_t pow_real_ceil(std::uint64_t n, double exponent, std::uint64_t cap) {
  CONGOS_ASSERT(exponent >= 0.0);
  if (n == 0) return 0;
  const double v = std::pow(static_cast<double>(n), exponent);
  if (!(v < static_cast<double>(cap))) return cap;
  return static_cast<std::uint64_t>(std::ceil(v));
}

double log_factor(std::uint64_t n) {
  if (n < 3) return 1.0;
  return std::log(static_cast<double>(n));
}

std::uint64_t isqrt(std::uint64_t x) {
  if (x == 0) return 0;
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  while (r > 0 && r * r > x) --r;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

}  // namespace congos
