// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng instances seeded from a
// single experiment seed, so that a (seed, configuration) pair fully
// determines an execution. This is what makes the adaptive-adversary tests
// reproducible.
//
// The generator is xoshiro256**; seeding uses splitmix64 as recommended by
// its authors.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace congos {

/// splitmix64 step; used for seeding and for deriving child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// UniformRandomBitGenerator interface (usable with <random> and
  /// std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's nearly-divisionless method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial.
  bool chance(double p);

  /// Number of arrivals of a Poisson(lambda) in one step. Knuth's product
  /// method, applied to chunks of lambda <= 500 and summed (Poisson is
  /// additive), so large lambda never hits the exp(-lambda) underflow.
  unsigned poisson(double lambda);

  /// k distinct values uniformly drawn from [0, n) without replacement.
  /// Requires k <= n. O(k) expected time (Floyd's algorithm).
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n, std::uint32_t k);

  /// Allocation-free variant for hot loops: clears `out` and fills it with
  /// the sample. Draws the exact same RNG stream as the returning overload.
  void sample_without_replacement(std::uint32_t n, std::uint32_t k,
                                  std::vector<std::uint32_t>& out);

  /// Derive an independent child generator; successive calls give distinct
  /// streams. Deterministic given the parent state.
  Rng fork();

  /// Fill a byte buffer with uniform random bytes.
  void fill_bytes(std::uint8_t* out, std::size_t len);

 private:
  /// One Knuth product-method draw; requires exp(-lambda) to be normal
  /// (lambda well below ~745).
  unsigned poisson_knuth(double lambda);

  std::uint64_t s_[4];
};

}  // namespace congos
