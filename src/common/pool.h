// Recycling pool for per-round wire payloads.
//
// The round hot path used to make_shared a fresh GossipMsg/GossipAck/... per
// sender per round; payload and control block die within the same round once
// the network inboxes clear. PayloadPool keeps both alive instead: releasing
// the last shared_ptr reference returns the *object* (with its internal
// vector capacities intact) to a free list and the *control block* to a
// block cache, so a steady-state round performs no heap allocation for
// payload traffic.
//
// Handles are plain std::shared_ptr<T>, implicitly convertible to
// sim::PayloadPtr (shared_ptr<const Payload>), so auditors, observers and
// the network are untouched - a pooled payload is indistinguishable from a
// make_shared one. Lifetime rules (DESIGN.md section 9):
//   * the pool core is itself shared_ptr-owned and captured by every
//     handle's deleter, so handles may outlive the PayloadPool object (and
//     service snapshot copies share one core with the live service);
//   * a recycled object is reset via T::reuse() before being handed out
//     (contents cleared, buffer capacity retained);
//   * pooling never affects behaviour - allocation identity is invisible to
//     the protocol, so traces are unchanged.
//
// Threading: acquire() stays single-threaded (a pool belongs to one process,
// which runs on exactly one thread per phase), but under sharded round
// execution (DESIGN.md section 12) the *last release* of a handle can happen
// on any engine worker — a payload sent to a process in another shard dies
// when that shard's inbox reference drops. The free lists are therefore
// guarded by a per-core spinlock: uncontended in the common case (same-shard
// release), never allocating, and recycling order is invisible to the
// protocol either way.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace congos {

template <typename T>
class PayloadPool {
 public:
  PayloadPool() : core_(std::make_shared<Core>()) {}

  /// A cleared T, recycled when possible. The returned handle behaves like
  /// make_shared<T>(); when the last reference (anywhere) drops, object and
  /// control block come back to this pool.
  std::shared_ptr<T> acquire() {
    T* obj = nullptr;
    {
      SpinGuard guard(core_->lock);
      if (!core_->free_objects.empty()) {
        obj = core_->free_objects.back().release();
        core_->free_objects.pop_back();
      }
    }
    if (obj == nullptr) {
      obj = new T();
    } else {
      obj->reuse();
    }
    return std::shared_ptr<T>(obj, Recycler{core_}, BlockAllocator<T>{core_});
  }

  /// Objects currently idle in the free list (tests/benchmarks).
  std::size_t idle() const {
    SpinGuard guard(core_->lock);
    return core_->free_objects.size();
  }

 private:
  struct Core {
    mutable std::atomic_flag lock = ATOMIC_FLAG_INIT;
    std::vector<std::unique_ptr<T>> free_objects;
    std::vector<void*> free_blocks;  // recycled shared_ptr control blocks
    std::size_t block_size = 0;      // fixed per T; learned on first release
    ~Core() {
      for (void* b : free_blocks) ::operator delete(b);
    }
  };

  /// Scoped holder of a Core's spinlock. Critical sections are a few vector
  /// operations long and contention is rare (cross-shard payload death), so
  /// a test-and-set spin beats a mutex and — unlike one — cannot allocate.
  class SpinGuard {
   public:
    explicit SpinGuard(std::atomic_flag& f) : flag_(f) {
      while (flag_.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~SpinGuard() { flag_.clear(std::memory_order_release); }
    SpinGuard(const SpinGuard&) = delete;
    SpinGuard& operator=(const SpinGuard&) = delete;

   private:
    std::atomic_flag& flag_;
  };

  /// Custom deleter: parks the object instead of destroying it.
  struct Recycler {
    std::shared_ptr<Core> core;
    void operator()(T* obj) const {
      SpinGuard guard(core->lock);
      core->free_objects.emplace_back(obj);
    }
  };

  /// Allocator handed to shared_ptr for its control block. Every control
  /// block for a given T has the same size, so a simple same-size free list
  /// suffices. The standard library deallocates through a *copy* of this
  /// allocator taken before the block is destroyed, so `core` is always
  /// alive at deallocation time.
  template <typename U>
  struct BlockAllocator {
    using value_type = U;

    explicit BlockAllocator(std::shared_ptr<Core> c) : core(std::move(c)) {}
    template <typename W>
    BlockAllocator(const BlockAllocator<W>& other) : core(other.core) {}

    U* allocate(std::size_t n) {
      const std::size_t bytes = n * sizeof(U);
      if (n == 1) {
        SpinGuard guard(core->lock);
        if (bytes == core->block_size && !core->free_blocks.empty()) {
          void* b = core->free_blocks.back();
          core->free_blocks.pop_back();
          return static_cast<U*>(b);
        }
      }
      return static_cast<U*>(::operator new(bytes));
    }

    void deallocate(U* p, std::size_t n) {
      const std::size_t bytes = n * sizeof(U);
      if (n == 1) {
        SpinGuard guard(core->lock);
        if (core->block_size == 0 || core->block_size == bytes) {
          core->block_size = bytes;
          core->free_blocks.push_back(p);
          return;
        }
      }
      ::operator delete(p);
    }

    std::shared_ptr<Core> core;
  };

  std::shared_ptr<Core> core_;
};

}  // namespace congos
