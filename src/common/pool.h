// Recycling pool for per-round wire payloads.
//
// The round hot path used to make_shared a fresh GossipMsg/GossipAck/... per
// sender per round; payload and control block die within the same round once
// the network inboxes clear. PayloadPool keeps both alive instead: releasing
// the last shared_ptr reference returns the *object* (with its internal
// vector capacities intact) to a free list and the *control block* to a
// block cache, so a steady-state round performs no heap allocation for
// payload traffic.
//
// Handles are plain std::shared_ptr<T>, implicitly convertible to
// sim::PayloadPtr (shared_ptr<const Payload>), so auditors, observers and
// the network are untouched - a pooled payload is indistinguishable from a
// make_shared one. Lifetime rules (DESIGN.md section 9):
//   * the pool core is itself shared_ptr-owned and captured by every
//     handle's deleter, so handles may outlive the PayloadPool object (and
//     service snapshot copies share one core with the live service);
//   * a recycled object is reset via T::reuse() before being handed out
//     (contents cleared, buffer capacity retained);
//   * pooling never affects behaviour - allocation identity is invisible to
//     the protocol, so traces are unchanged.
//
// Single-threaded by design, like everything per-process in the simulator:
// a pool must only be used from the thread running its scenario.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace congos {

template <typename T>
class PayloadPool {
 public:
  PayloadPool() : core_(std::make_shared<Core>()) {}

  /// A cleared T, recycled when possible. The returned handle behaves like
  /// make_shared<T>(); when the last reference (anywhere) drops, object and
  /// control block come back to this pool.
  std::shared_ptr<T> acquire() {
    T* obj = nullptr;
    if (core_->free_objects.empty()) {
      obj = new T();
    } else {
      obj = core_->free_objects.back().release();
      core_->free_objects.pop_back();
      obj->reuse();
    }
    return std::shared_ptr<T>(obj, Recycler{core_}, BlockAllocator<T>{core_});
  }

  /// Objects currently idle in the free list (tests/benchmarks).
  std::size_t idle() const { return core_->free_objects.size(); }

 private:
  struct Core {
    std::vector<std::unique_ptr<T>> free_objects;
    std::vector<void*> free_blocks;  // recycled shared_ptr control blocks
    std::size_t block_size = 0;      // fixed per T; learned on first release
    ~Core() {
      for (void* b : free_blocks) ::operator delete(b);
    }
  };

  /// Custom deleter: parks the object instead of destroying it.
  struct Recycler {
    std::shared_ptr<Core> core;
    void operator()(T* obj) const { core->free_objects.emplace_back(obj); }
  };

  /// Allocator handed to shared_ptr for its control block. Every control
  /// block for a given T has the same size, so a simple same-size free list
  /// suffices. The standard library deallocates through a *copy* of this
  /// allocator taken before the block is destroyed, so `core` is always
  /// alive at deallocation time.
  template <typename U>
  struct BlockAllocator {
    using value_type = U;

    explicit BlockAllocator(std::shared_ptr<Core> c) : core(std::move(c)) {}
    template <typename W>
    BlockAllocator(const BlockAllocator<W>& other) : core(other.core) {}

    U* allocate(std::size_t n) {
      const std::size_t bytes = n * sizeof(U);
      if (n == 1 && bytes == core->block_size && !core->free_blocks.empty()) {
        void* b = core->free_blocks.back();
        core->free_blocks.pop_back();
        return static_cast<U*>(b);
      }
      return static_cast<U*>(::operator new(bytes));
    }

    void deallocate(U* p, std::size_t n) {
      const std::size_t bytes = n * sizeof(U);
      if (n == 1 && (core->block_size == 0 || core->block_size == bytes)) {
        core->block_size = bytes;
        core->free_blocks.push_back(p);
        return;
      }
      ::operator delete(p);
    }

    std::shared_ptr<Core> core;
  };

  std::shared_ptr<Core> core_;
};

}  // namespace congos
