// Fundamental identifier and time types shared by every subsystem.
//
// The paper (Section 2) models a system of `n` synchronous processes with
// unique ids from [n] = {1, ..., n}; we use 0-based ids internally and render
// them 1-based only when printing.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace congos {

/// Identifier of a process; dense in [0, n).
using ProcessId = std::uint32_t;

/// Globally numbered synchronous round (the paper assumes a global clock).
using Round = std::int64_t;

/// Index of a partition (the paper uses log n bit-partitions, or
/// c*tau*log n random partitions under collusion).
using PartitionIndex = std::uint32_t;

/// Index of a group inside a partition (2 groups without collusion,
/// tau+1 groups with collusion tolerance tau).
using GroupIndex = std::uint32_t;

/// Globally unique rumor identifier: (source process, per-source sequence).
/// The sequence number doubles as the `counter` the paper appends to rumor
/// fragments so delivery confirmations can reference a rumor without
/// revealing its contents.
struct RumorUid {
  ProcessId source = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const RumorUid&, const RumorUid&) = default;
  friend auto operator<=>(const RumorUid&, const RumorUid&) = default;
};

/// 64-bit packing of a RumorUid, handy as a map key.
constexpr std::uint64_t pack(RumorUid uid) {
  return (static_cast<std::uint64_t>(uid.source) << 40) | (uid.seq & ((1ull << 40) - 1));
}

constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();
constexpr Round kNoRound = std::numeric_limits<Round>::min();

}  // namespace congos

template <>
struct std::hash<congos::RumorUid> {
  std::size_t operator()(const congos::RumorUid& uid) const noexcept {
    // splitmix-style finalizer over the packed value
    std::uint64_t x = congos::pack(uid);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
