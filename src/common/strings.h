// String formatting helpers for human-readable experiment output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace congos {

/// "1, 2, 3" style join.
std::string join(const std::vector<std::uint32_t>& v, const std::string& sep = ", ");

/// Fixed-precision double -> string without trailing noise ("12.34").
std::string fmt_double(double v, int precision = 2);

/// Thousands-separated integer ("1,234,567").
std::string fmt_count(std::uint64_t v);

}  // namespace congos
