// XOR secret sharing (Section 4.1 / Section 6.2).
//
// A rumor datum z is split into k fragments z_0..z_{k-1}: z_0..z_{k-2} are
// independent uniform random strings and z_{k-1} = z xor z_0 xor ... xor
// z_{k-2}. Any k-1 fragments are jointly uniform and reveal nothing about z;
// all k fragments XOR back to z. This is the simplest instantiation of
// cryptographic secret sharing [Shamir'79], and the only coding CONGOS needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace congos::coding {

using Bytes = std::vector<std::uint8_t>;

/// Split `data` into `k` >= 2 fragments, each the same length as `data`.
/// Randomness drawn from `rng`.
std::vector<Bytes> split(std::span<const std::uint8_t> data, std::size_t k, Rng& rng);

/// Recombine fragments produced by split(). All fragments must have equal
/// length; order does not matter (XOR is commutative).
Bytes combine(std::span<const Bytes> fragments);

/// XOR b into a (a ^= b); lengths must match.
void xor_into(Bytes& a, std::span<const std::uint8_t> b);

}  // namespace congos::coding
