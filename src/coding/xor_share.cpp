#include "coding/xor_share.h"

#include "common/assert.h"

namespace congos::coding {

std::vector<Bytes> split(std::span<const std::uint8_t> data, std::size_t k, Rng& rng) {
  CONGOS_ASSERT_MSG(k >= 2, "secret sharing needs at least 2 fragments");
  std::vector<Bytes> frags(k);
  Bytes acc(data.begin(), data.end());
  for (std::size_t i = 0; i + 1 < k; ++i) {
    frags[i].resize(data.size());
    rng.fill_bytes(frags[i].data(), frags[i].size());
    xor_into(acc, frags[i]);
  }
  frags[k - 1] = std::move(acc);
  return frags;
}

Bytes combine(std::span<const Bytes> fragments) {
  CONGOS_ASSERT_MSG(!fragments.empty(), "combine of zero fragments");
  Bytes out = fragments[0];
  for (std::size_t i = 1; i < fragments.size(); ++i) {
    xor_into(out, fragments[i]);
  }
  return out;
}

void xor_into(Bytes& a, std::span<const std::uint8_t> b) {
  CONGOS_ASSERT_MSG(a.size() == b.size(), "fragment length mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

}  // namespace congos::coding
