#include "wire/envelope.h"

#include "wire/payload_codec.h"

namespace congos::wire {

namespace {

void set_error(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

bool encode_envelope(const sim::Envelope& e, Round round,
                     std::vector<std::uint8_t>* out) {
  out->clear();
  return encode_envelope_append(e, round, out);
}

bool encode_envelope_append(const sim::Envelope& e, Round round,
                            std::vector<std::uint8_t>* out) {
  const std::size_t start = out->size();
  WriteSink s(std::move(*out));
  FrameHeader h = make_frame_header(e, round);
  frame_header_fields(s, h);

  // The body-length prefix uses the memoized encoded_size() so the body can
  // be written directly after it with no intermediate buffer; the byte-count
  // check below keeps the two honest (test_wire pins their agreement).
  const std::uint64_t body_size = e.body ? e.body->encoded_size() : 0;
  s.varint(body_size);
  const std::size_t body_at = s.data().size();
  bool ok = true;
  if (e.body != nullptr) ok = encode_payload(s, *e.body);
  ok = ok && s.ok() && s.data().size() - body_at == body_size;
  if (!ok) {
    *out = s.take();
    out->resize(start);
    return false;
  }

  s.u64le(fnv1a(s.data().data() + start, s.data().size() - start));
  *out = s.take();
  return true;
}

bool decode_envelope(const std::uint8_t* data, std::size_t len,
                     DecodedEnvelope* out, std::string* error) {
  if (len < kChecksumBytes + 1) {
    set_error(error, "frame too short");
    return false;
  }
  const std::size_t body_len = len - kChecksumBytes;
  std::uint64_t stored = 0;
  for (std::size_t b = 0; b < kChecksumBytes; ++b) {
    stored |= static_cast<std::uint64_t>(data[body_len + b]) << (8 * b);
  }
  if (fnv1a(data, body_len) != stored) {
    set_error(error, "checksum mismatch (truncated or corrupted frame)");
    return false;
  }

  ReadSink s(data, body_len);
  FrameHeader h;
  frame_header_fields(s, h);
  if (!s.ok()) {
    set_error(error, "malformed frame header");
    return false;
  }
  if (h.version != kWireFormatVersion) {
    set_error(error, "unsupported wire format version");
    return false;
  }
  if (h.payload_kind > static_cast<std::uint8_t>(sim::PayloadKind::kStrongAck)) {
    set_error(error, "unknown payload kind");
    return false;
  }
  if (h.service_kind > static_cast<std::uint8_t>(sim::ServiceKind::kOther)) {
    set_error(error, "unknown service kind");
    return false;
  }

  std::uint64_t blen = 0;
  s.varint(blen);
  if (!s.ok() || blen != s.remaining()) {
    set_error(error, "body length mismatch");
    return false;
  }

  sim::PayloadPtr body;
  if (h.payload_kind == static_cast<std::uint8_t>(sim::PayloadKind::kOpaque)) {
    if (blen != 0) {
      set_error(error, "opaque frame with non-empty body");
      return false;
    }
  } else {
    const std::size_t body_start = s.pos();
    body = decode_payload(s, static_cast<sim::PayloadKind>(h.payload_kind));
    if (body == nullptr || !s.ok()) {
      set_error(error, "malformed payload body");
      return false;
    }
    if (s.pos() - body_start != blen) {
      set_error(error, "payload body under-consumed");
      return false;
    }
  }

  out->version = h.version;
  out->round = h.round;
  out->env.from = h.from;
  out->env.to = h.to;
  out->env.tag.kind = static_cast<sim::ServiceKind>(h.service_kind);
  out->env.tag.partition = h.partition;
  out->env.body = std::move(body);
  return true;
}

bool decode_envelope(const std::vector<std::uint8_t>& bytes, DecodedEnvelope* out,
                     std::string* error) {
  return decode_envelope(bytes.data(), bytes.size(), out, error);
}

}  // namespace congos::wire
