// Optional LZ4 block compression for coalesced gossip datagrams
// (DESIGN.md section 13, ROADMAP item 3 follow-up).
//
// The codec's varint/delta compression already shrinks individual payloads;
// whole-datagram LZ4 pays off on top of it once several frames coalesce
// (shared header bytes, repeated gids, rumor data). LZ4 is strictly
// optional, resolved in two layers:
//
//   * build time: find_package-style discovery links liblz4 directly and
//     defines CONGOS_HAVE_LZ4;
//   * run time: without the dev package, a one-shot dlopen("liblz4.so.1")
//     probe resolves the three block primitives from the runtime library
//     alone - containers that ship the .so.1 but no headers still get
//     working compression.
//
// When neither layer finds LZ4, lz4_available() is false and every
// compress/decompress call fails cleanly; senders then ship plain datagrams
// and the frame format stays byte-identical to a build without this file.
// Peers interoperate by construction: compression is a per-datagram
// property signalled in the datagram container (net/framing.h), never a
// session capability that has to be negotiated.
//
// The _raw entry points write into caller-provided storage so the send hot
// path can stay allocation-free (the scratch buffer is owned by the
// runtime and keeps its capacity across rounds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace congos::wire {

/// True when LZ4 block primitives are usable in this process (linked at
/// build time or resolved from liblz4.so.1 at first call).
bool lz4_available();

/// Worst-case compressed size for `n` input bytes (LZ4_compressBound).
/// Returns 0 when LZ4 is unavailable or `n` exceeds LZ4's 2 GiB bound.
std::size_t lz4_compress_bound(std::size_t n);

/// Compresses src[0..n) into dst[0..cap). Returns the compressed size, or
/// 0 on failure (LZ4 unavailable, cap too small, empty input).
std::size_t lz4_compress_raw(const std::uint8_t* src, std::size_t n,
                             std::uint8_t* dst, std::size_t cap);

/// Decompresses src[0..n) into dst, which must hold exactly `raw_len`
/// bytes. Returns true only when the block decodes to exactly raw_len
/// bytes; any corruption or size mismatch fails.
bool lz4_decompress_raw(const std::uint8_t* src, std::size_t n,
                        std::uint8_t* dst, std::size_t raw_len);

// -- vector conveniences (tests, tools; the hot path uses _raw) --------------

/// Compresses src into *dst (resized to the compressed size). Returns false
/// when LZ4 is unavailable or src is empty.
bool lz4_compress(std::span<const std::uint8_t> src,
                  std::vector<std::uint8_t>* dst);

/// Decompresses src into *dst (resized to raw_len). Returns false on any
/// corruption or when the block does not decode to exactly raw_len bytes.
bool lz4_decompress(std::span<const std::uint8_t> src, std::size_t raw_len,
                    std::vector<std::uint8_t>* dst);

}  // namespace congos::wire
