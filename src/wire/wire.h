// Versioned binary wire codec: sink primitives (ROADMAP item 3, DESIGN.md
// section 11).
//
// Three sinks share one interface so a single field-walk template per payload
// type drives encoding, decoding AND size accounting — the three can never
// drift apart, which is the whole point of replacing the hand-maintained
// wire_size() estimates:
//
//   * WriteSink  appends to a byte buffer (encode),
//   * SizeSink   counts bytes without touching memory (encoded_size(); it is
//                stack-only, which is what keeps the per-round byte
//                accounting allocation-free, see tests/test_alloc.cpp),
//   * ReadSink   parses with bounds checks and a latching error flag, same
//                discipline as replay::ByteReader (decode).
//
// A walk is a free function template found by ADL next to its payload type:
//
//   template <class S, wire::SameBase<Foo> F>
//   void wire_fields(S& s, F& f) { s.varint32(f.id); s.bytes(f.data); ... }
//
// `if constexpr (S::kReading)` guards read-only logic (delta reconstruction,
// meta inheritance). Integers are LEB128 varints (zigzag for signed), byte
// strings are length-prefixed, bitsets are bit-count + packed LSB-first
// bytes. Encodings are canonical: ReadSink rejects non-minimal varints and
// set padding bits, so decode(encode(x)) == x implies re-encode is
// byte-identical.
//
// This header depends only on src/common so the sim layer can use SizeSink
// without a dependency cycle (sim::Payload is the codec's subject).
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/bitset.h"

namespace congos::wire {

/// Format version stamped into every envelope frame (and optionally into
/// .repro artifacts and bench metadata). Bump on ANY layout change and keep
/// decoders for old versions; the golden byte-layout test pins v1.
inline constexpr std::uint8_t kWireFormatVersion = 1;

// FNV-1a, the repo's standard checksum (same constants as the golden-trace
// hash and the .repro codec).
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Constrains the payload parameter of a field walk: accepts T and const T,
/// so one template serves WriteSink/SizeSink (const payload) and ReadSink
/// (mutable payload).
template <class T, class U>
concept SameBase = std::is_same_v<std::remove_const_t<T>, U>;

inline constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (0 - (v & 1)));
}

inline constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

class WriteSink {
 public:
  static constexpr bool kReading = false;

  WriteSink() = default;
  /// Adopts `buf` and appends to it; take() returns it, prior content
  /// intact. This is what lets the datagram fast path encode frames
  /// directly into a pooled buffer instead of through a temporary.
  explicit WriteSink(std::vector<std::uint8_t> buf) : buf_(std::move(buf)) {}

  bool ok() const { return ok_; }
  /// Marks the encode as failed (e.g. a nested payload the codec cannot
  /// serialize). The buffer content is unspecified afterwards.
  void fail() { ok_ = false; }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void varint32(std::uint32_t v) { varint(v); }
  void zigzag(std::int64_t v) { varint(zigzag_encode(v)); }

  /// Fixed-width little-endian u64 (checksums only; everything else is a
  /// varint).
  void u64le(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }

  void bytes(const std::vector<std::uint8_t>& v) {
    varint(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  /// Bit-count then packed LSB-first bytes; padding bits in the last byte
  /// are zero (ReadSink enforces this).
  void bitset(const DynamicBitset& b) {
    varint(b.size());
    const std::size_t nbytes = b.byte_size();
    for (std::size_t i = 0; i < nbytes; ++i) {
      std::uint8_t acc = 0;
      const std::size_t base = i * 8;
      for (std::size_t j = 0; j < 8 && base + j < b.size(); ++j) {
        if (b.test(base + j)) acc |= static_cast<std::uint8_t>(1u << j);
      }
      buf_.push_back(acc);
    }
  }

  /// Element count of a sequence; the walk loops the elements itself.
  template <class V>
  void seq(const V& v) {
    varint(v.size());
  }

  /// Nested payload: one kind byte, then the body fields. Defined via the
  /// hook declared in sim/message.h (wire_encode_nested, found by ADL) so
  /// this header never sees concrete payload types.
  template <class P>
  void nested(const std::shared_ptr<P>& p) {
    wire_encode_nested(*this, p);
  }

  void append(const std::vector<std::uint8_t>& v) {
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
  bool ok_ = true;
};

/// Counts the bytes WriteSink would produce, without writing them. Holds no
/// heap state: encoded_size() on the hot accounting path allocates nothing.
class SizeSink {
 public:
  static constexpr bool kReading = false;

  bool ok() const { return ok_; }
  void fail() { ok_ = false; }

  void u8(std::uint8_t) { ++size_; }
  void varint(std::uint64_t v) { size_ += varint_size(v); }
  void varint32(std::uint32_t v) { varint(v); }
  void zigzag(std::int64_t v) { varint(zigzag_encode(v)); }
  void u64le(std::uint64_t) { size_ += 8; }

  void bytes(const std::vector<std::uint8_t>& v) {
    size_ += varint_size(v.size()) + v.size();
  }

  void bitset(const DynamicBitset& b) {
    size_ += varint_size(b.size()) + b.byte_size();
  }

  template <class V>
  void seq(const V& v) {
    varint(v.size());
  }

  /// Kind byte plus the body's own (virtual, memoized where hot) size; must
  /// match WriteSink::nested byte for byte — test_wire pins the agreement.
  template <class P>
  void nested(const std::shared_ptr<P>& p) {
    size_ += 1 + (p ? p->encoded_size() : 0);
  }

  std::uint64_t size() const { return size_; }

 private:
  std::uint64_t size_ = 0;
  bool ok_ = true;
};

class ReadSink {
 public:
  static constexpr bool kReading = true;

  ReadSink(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit ReadSink(const std::vector<std::uint8_t>& v)
      : ReadSink(v.data(), v.size()) {}

  bool ok() const { return ok_; }
  void fail() { ok_ = false; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return ok_ ? len_ - pos_ : 0; }

  void u8(std::uint8_t& v) {
    if (!ok_ || pos_ >= len_) {
      fail();
      v = 0;
      return;
    }
    v = data_[pos_++];
  }

  void varint(std::uint64_t& out) {
    out = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
      std::uint8_t b = 0;
      u8(b);
      if (!ok_) return;
      if (shift == 63 && (b & 0xFE) != 0) {  // would overflow 64 bits
        fail();
        return;
      }
      out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        if (b == 0 && i > 0) fail();  // non-minimal encoding
        return;
      }
      shift += 7;
    }
    fail();  // continuation bit on the 10th byte
  }

  void varint32(std::uint32_t& out) {
    std::uint64_t v = 0;
    varint(v);
    if (v > 0xFFFFFFFFull) fail();
    out = ok_ ? static_cast<std::uint32_t>(v) : 0;
  }

  void zigzag(std::int64_t& out) {
    std::uint64_t v = 0;
    varint(v);
    out = ok_ ? zigzag_decode(v) : 0;
  }

  void u64le(std::uint64_t& out) {
    out = 0;
    if (!ok_ || len_ - pos_ < 8) {
      fail();
      return;
    }
    for (int b = 0; b < 8; ++b) {
      out |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(b)])
             << (8 * b);
    }
    pos_ += 8;
  }

  void bytes(std::vector<std::uint8_t>& v) {
    std::uint64_t n = 0;
    varint(n);
    if (!ok_ || n > remaining()) {
      fail();
      return;
    }
    v.assign(data_ + pos_, data_ + pos_ + n);
    pos_ += static_cast<std::size_t>(n);
  }

  void bitset(DynamicBitset& b) {
    std::uint64_t nbits = 0;
    varint(nbits);
    if (!ok_) return;
    const std::uint64_t nbytes = (nbits + 7) / 8;
    if (nbytes > remaining()) {
      fail();
      return;
    }
    b = DynamicBitset(static_cast<std::size_t>(nbits));
    for (std::uint64_t i = 0; i < nbytes; ++i) {
      const std::uint8_t byte = data_[pos_ + i];
      for (std::size_t j = 0; j < 8; ++j) {
        const std::uint64_t idx = i * 8 + j;
        if ((byte >> j) & 1u) {
          if (idx >= nbits) {  // set padding bit: non-canonical
            fail();
            return;
          }
          b.set(static_cast<std::size_t>(idx));
        }
      }
    }
    pos_ += static_cast<std::size_t>(nbytes);
  }

  /// Reads a count and resizes `v`; the walk then decodes each element.
  /// Guard: every element of every v1 sequence occupies at least one byte,
  /// so a count beyond remaining() cannot be honest — reject before
  /// allocating (same check_count discipline as replay::ByteReader).
  template <class V>
  void seq(V& v) {
    std::uint64_t n = 0;
    varint(n);
    if (!ok_ || n > remaining()) {
      fail();
      v.clear();
      return;
    }
    v.resize(static_cast<std::size_t>(n));
  }

  template <class P>
  void nested(std::shared_ptr<P>& p) {
    wire_decode_nested(*this, p);
  }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace congos::wire
