// Per-kind payload encode/decode dispatch: the one switch over
// sim::PayloadKind (both directions), used by the envelope codec and the
// round-trip tests. Body layouts themselves live as wire_fields walks next
// to each payload type.
#pragma once

#include "sim/message.h"
#include "wire/wire.h"

namespace congos::wire {

/// Appends the body fields of `p` (kind tag excluded — the envelope frame
/// or the nested-payload framing carries it). Returns false for kinds the
/// codec cannot serialize (kOpaque).
bool encode_payload(WriteSink& s, const sim::Payload& p);

/// Decodes a body of `kind` from `s`. Returns nullptr (with s failed) on
/// malformed input or un-decodable kinds.
sim::PayloadPtr decode_payload(ReadSink& s, sim::PayloadKind kind);

}  // namespace congos::wire
