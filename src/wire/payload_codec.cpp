#include "wire/payload_codec.h"

#include <memory>

#include "baseline/baseline_payload.h"
#include "congos/fragment.h"
#include "gossip/continuous_gossip.h"

namespace congos::wire {

bool encode_payload(WriteSink& s, const sim::Payload& p) {
  using sim::PayloadKind;
  switch (p.kind()) {
    case PayloadKind::kOpaque:
      return false;  // test doubles carry no wire format
    case PayloadKind::kGossipMsg:
      wire_fields(s, static_cast<const gossip::GossipMsg&>(p));
      return true;
    case PayloadKind::kGossipAck:
      wire_fields(s, static_cast<const gossip::GossipAck&>(p));
      return true;
    case PayloadKind::kGossipPull:
      wire_fields(s, static_cast<const gossip::GossipPull&>(p));
      return true;
    case PayloadKind::kProxyRequest:
      wire_fields(s, static_cast<const core::ProxyRequestPayload&>(p));
      return true;
    case PayloadKind::kProxyAck:
      wire_fields(s, static_cast<const core::ProxyAckPayload&>(p));
      return true;
    case PayloadKind::kPartials:
      wire_fields(s, static_cast<const core::PartialsPayload&>(p));
      return true;
    case PayloadKind::kDirectRumor:
      wire_fields(s, static_cast<const core::DirectRumorPayload&>(p));
      return true;
    case PayloadKind::kPartialsAck:
      wire_fields(s, static_cast<const core::PartialsAckPayload&>(p));
      return true;
    case PayloadKind::kDirectAck:
      wire_fields(s, static_cast<const core::DirectAckPayload&>(p));
      return true;
    case PayloadKind::kFragment:
      wire_fields(s, static_cast<const core::FragmentBody&>(p));
      return true;
    case PayloadKind::kProxyShare:
      wire_fields(s, static_cast<const core::ProxyShareBody&>(p));
      return true;
    case PayloadKind::kHitSetShare:
      wire_fields(s, static_cast<const core::HitSetShareBody&>(p));
      return true;
    case PayloadKind::kDistributionReport:
      wire_fields(s, static_cast<const core::DistributionReportBody&>(p));
      return true;
    case PayloadKind::kBaselineRumor:
      wire_fields(s, static_cast<const baseline::BaselineRumorPayload&>(p));
      return true;
    case PayloadKind::kBaselineBatch:
      wire_fields(s, static_cast<const baseline::BaselineBatchPayload&>(p));
      return true;
    case PayloadKind::kStrongAck:
      wire_fields(s, static_cast<const baseline::StrongAckPayload&>(p));
      return true;
  }
  return false;
}

namespace {

template <class P>
sim::PayloadPtr decode_as(ReadSink& s) {
  auto p = std::make_shared<P>();
  wire_fields(s, *p);
  if (!s.ok()) return nullptr;
  return p;
}

}  // namespace

sim::PayloadPtr decode_payload(ReadSink& s, sim::PayloadKind kind) {
  using sim::PayloadKind;
  switch (kind) {
    case PayloadKind::kOpaque:
      break;  // not decodable; fail below
    case PayloadKind::kGossipMsg:
      return decode_as<gossip::GossipMsg>(s);
    case PayloadKind::kGossipAck:
      return decode_as<gossip::GossipAck>(s);
    case PayloadKind::kGossipPull:
      return decode_as<gossip::GossipPull>(s);
    case PayloadKind::kProxyRequest:
      return decode_as<core::ProxyRequestPayload>(s);
    case PayloadKind::kProxyAck:
      return decode_as<core::ProxyAckPayload>(s);
    case PayloadKind::kPartials:
      return decode_as<core::PartialsPayload>(s);
    case PayloadKind::kDirectRumor:
      return decode_as<core::DirectRumorPayload>(s);
    case PayloadKind::kPartialsAck:
      return decode_as<core::PartialsAckPayload>(s);
    case PayloadKind::kDirectAck:
      return decode_as<core::DirectAckPayload>(s);
    case PayloadKind::kFragment:
      return decode_as<core::FragmentBody>(s);
    case PayloadKind::kProxyShare:
      return decode_as<core::ProxyShareBody>(s);
    case PayloadKind::kHitSetShare:
      return decode_as<core::HitSetShareBody>(s);
    case PayloadKind::kDistributionReport:
      return decode_as<core::DistributionReportBody>(s);
    case PayloadKind::kBaselineRumor:
      return decode_as<baseline::BaselineRumorPayload>(s);
    case PayloadKind::kBaselineBatch:
      return decode_as<baseline::BaselineBatchPayload>(s);
    case PayloadKind::kStrongAck:
      return decode_as<baseline::StrongAckPayload>(s);
  }
  s.fail();
  return nullptr;
}

}  // namespace congos::wire

namespace congos::sim {

// Nested-payload hooks declared in sim/message.h. Framing: one PayloadKind
// byte, then the body fields; a null body is a single kOpaque byte.

void wire_encode_nested(wire::WriteSink& s, const PayloadPtr& p) {
  s.u8(static_cast<std::uint8_t>(p ? p->kind() : PayloadKind::kOpaque));
  if (p != nullptr && !wire::encode_payload(s, *p)) s.fail();
}

void wire_decode_nested(wire::ReadSink& s, PayloadPtr& p) {
  std::uint8_t kind = 0;
  s.u8(kind);
  if (!s.ok() || kind > static_cast<std::uint8_t>(PayloadKind::kStrongAck)) {
    s.fail();
    p = nullptr;
    return;
  }
  if (kind == static_cast<std::uint8_t>(PayloadKind::kOpaque)) {
    p = nullptr;  // null body
    return;
  }
  p = wire::decode_payload(s, static_cast<PayloadKind>(kind));
}

}  // namespace congos::sim
