// Envelope frame: the versioned, checksummed on-wire form of one
// sim::Envelope (DESIGN.md section 11).
//
// v1 layout (all multi-byte ints varint unless noted):
//
//   u8      format version (wire::kWireFormatVersion)
//   u8      payload kind   (sim::PayloadKind)
//   u8      service kind   (sim::ServiceKind)
//   varint  partition      (ServiceTag::partition)
//   varint  from
//   varint  to
//   zigzag  round          (send round; the simulator's clock)
//   varint  body length
//   ...     body           (the payload's wire_fields walk)
//   u64le   FNV-1a checksum over every preceding byte
//
// encoded_envelope_size() is header-only and allocation-free so
// sim::Network can account actual bytes per submit without linking the
// codec; encode/decode live in congos_wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/message.h"
#include "wire/wire.h"

namespace congos::wire {

inline constexpr std::size_t kChecksumBytes = 8;

/// The addressing header of a frame, decomposed so one walk template drives
/// encode, decode and size.
struct FrameHeader {
  std::uint8_t version = kWireFormatVersion;
  std::uint8_t payload_kind = 0;
  std::uint8_t service_kind = 0;
  PartitionIndex partition = 0;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Round round = 0;
};

template <class S, SameBase<FrameHeader> H>
void frame_header_fields(S& s, H& h) {
  s.u8(h.version);
  s.u8(h.payload_kind);
  s.u8(h.service_kind);
  s.varint32(h.partition);
  s.varint32(h.from);
  s.varint32(h.to);
  s.zigzag(h.round);
}

inline FrameHeader make_frame_header(const sim::Envelope& e, Round round) {
  FrameHeader h;
  h.payload_kind = static_cast<std::uint8_t>(
      e.body ? e.body->kind() : sim::PayloadKind::kOpaque);
  h.service_kind = static_cast<std::uint8_t>(e.tag.kind);
  h.partition = e.tag.partition;
  h.from = e.from;
  h.to = e.to;
  h.round = round;
  return h;
}

/// Exact serialized size of the v1 frame for `e` sent in `round`: what
/// encode_envelope() would produce. Allocation-free (SizeSink + the
/// payloads' memoized encoded_size()), which is what lets Network::submit
/// account actual bytes inside the zero-alloc steady-state round.
inline std::uint64_t encoded_envelope_size(const sim::Envelope& e, Round round) {
  SizeSink s;
  FrameHeader h = make_frame_header(e, round);
  frame_header_fields(s, h);
  const std::uint64_t body = e.body ? e.body->encoded_size() : 0;
  s.varint(body);
  return s.size() + body + kChecksumBytes;
}

struct DecodedEnvelope {
  sim::Envelope env;
  Round round = 0;
  std::uint8_t version = 0;
};

/// Serializes one envelope. Returns false (out untouched beyond clearing)
/// for bodies the codec cannot express (kOpaque test doubles).
bool encode_envelope(const sim::Envelope& e, Round round,
                     std::vector<std::uint8_t>* out);

/// Appends the frame to `out` in place — no temporary buffers, so once
/// `out` has warm capacity the encode allocates nothing (the datagram fast
/// path encodes straight into a pooled buffer; tests/test_net_alloc.cpp
/// pins this). On failure `out` is restored to its original size.
bool encode_envelope_append(const sim::Envelope& e, Round round,
                            std::vector<std::uint8_t>* out);

/// Parses bytes produced by encode_envelope(). Rejects bad checksums,
/// unknown versions, out-of-range enum tags, body under/overruns and
/// trailing garbage; `error` (when non-null) describes the first problem.
bool decode_envelope(const std::uint8_t* data, std::size_t len,
                     DecodedEnvelope* out, std::string* error = nullptr);
bool decode_envelope(const std::vector<std::uint8_t>& bytes, DecodedEnvelope* out,
                     std::string* error = nullptr);

}  // namespace congos::wire
