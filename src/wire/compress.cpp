#include "wire/compress.h"

#include <limits>
#include <mutex>

#ifdef CONGOS_HAVE_LZ4
#include <lz4.h>
#else
#include <dlfcn.h>
#endif

namespace congos::wire {

namespace {

// LZ4 block API signatures (stable since lz4 r123); when the dev package is
// absent these are resolved from the runtime library by name.
using CompressBoundFn = int (*)(int);
using CompressDefaultFn = int (*)(const char*, char*, int, int);
using DecompressSafeFn = int (*)(const char*, char*, int, int);

struct Lz4Api {
  CompressBoundFn compress_bound = nullptr;
  CompressDefaultFn compress_default = nullptr;
  DecompressSafeFn decompress_safe = nullptr;

  bool ok() const {
    return compress_bound != nullptr && compress_default != nullptr &&
           decompress_safe != nullptr;
  }
};

const Lz4Api& api() {
  static Lz4Api a;
  static std::once_flag once;
  std::call_once(once, [] {
#ifdef CONGOS_HAVE_LZ4
    a.compress_bound = &LZ4_compressBound;
    a.compress_default = &LZ4_compress_default;
    a.decompress_safe = &LZ4_decompress_safe;
#else
    // Runtime capability probe: the handle is deliberately leaked (the
    // library stays mapped for the process lifetime, like a link-time
    // dependency would).
    void* lib = ::dlopen("liblz4.so.1", RTLD_NOW | RTLD_GLOBAL);
    if (lib == nullptr) lib = ::dlopen("liblz4.so", RTLD_NOW | RTLD_GLOBAL);
    if (lib == nullptr) return;
    a.compress_bound =
        reinterpret_cast<CompressBoundFn>(::dlsym(lib, "LZ4_compressBound"));
    a.compress_default = reinterpret_cast<CompressDefaultFn>(
        ::dlsym(lib, "LZ4_compress_default"));
    a.decompress_safe = reinterpret_cast<DecompressSafeFn>(
        ::dlsym(lib, "LZ4_decompress_safe"));
    if (!a.ok()) a = Lz4Api{};
#endif
  });
  return a;
}

constexpr std::size_t kIntMax =
    static_cast<std::size_t>(std::numeric_limits<int>::max());

}  // namespace

bool lz4_available() { return api().ok(); }

std::size_t lz4_compress_bound(std::size_t n) {
  const Lz4Api& a = api();
  if (!a.ok() || n == 0 || n > kIntMax) return 0;
  const int bound = a.compress_bound(static_cast<int>(n));
  return bound > 0 ? static_cast<std::size_t>(bound) : 0;
}

std::size_t lz4_compress_raw(const std::uint8_t* src, std::size_t n,
                             std::uint8_t* dst, std::size_t cap) {
  const Lz4Api& a = api();
  if (!a.ok() || n == 0 || n > kIntMax || cap == 0 || cap > kIntMax) return 0;
  const int written = a.compress_default(
      reinterpret_cast<const char*>(src), reinterpret_cast<char*>(dst),
      static_cast<int>(n), static_cast<int>(cap));
  return written > 0 ? static_cast<std::size_t>(written) : 0;
}

bool lz4_decompress_raw(const std::uint8_t* src, std::size_t n,
                        std::uint8_t* dst, std::size_t raw_len) {
  const Lz4Api& a = api();
  if (!a.ok() || n == 0 || n > kIntMax || raw_len == 0 || raw_len > kIntMax) {
    return false;
  }
  const int got = a.decompress_safe(
      reinterpret_cast<const char*>(src), reinterpret_cast<char*>(dst),
      static_cast<int>(n), static_cast<int>(raw_len));
  return got == static_cast<int>(raw_len);
}

bool lz4_compress(std::span<const std::uint8_t> src,
                  std::vector<std::uint8_t>* dst) {
  const std::size_t bound = lz4_compress_bound(src.size());
  if (bound == 0) return false;
  dst->resize(bound);
  const std::size_t written =
      lz4_compress_raw(src.data(), src.size(), dst->data(), dst->size());
  if (written == 0) return false;
  dst->resize(written);
  return true;
}

bool lz4_decompress(std::span<const std::uint8_t> src, std::size_t raw_len,
                    std::vector<std::uint8_t>* dst) {
  if (raw_len == 0) return false;
  dst->resize(raw_len);
  return lz4_decompress_raw(src.data(), src.size(), dst->data(), raw_len);
}

}  // namespace congos::wire
