// E5 (Theorem 16): the cost of collusion tolerance.
//
// Sweep tau; CONGOS uses tau+1 fragments over ~c*tau*log n partitions, so
// Theorem 16 predicts a tau^2 multiplicative overhead on the per-round
// message complexity. We report measured totals and peaks, the ratio to
// tau = 1, the tau^2 prediction, and the coalition audit: the smallest
// curious coalition that could reconstruct any rumor must exceed tau.
#include "bench_util.h"
#include "congos/congos_process.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

int main() {
  bench::banner("E5 / Theorem 16",
                "Collusion tolerance tau costs ~tau^2 in message complexity; "
                "no coalition of <= tau curious processes can reconstruct.");

  const std::size_t n = bench::full_scale() ? 96 : 64;
  std::vector<std::uint32_t> taus = {1, 2, 3};
  if (bench::full_scale()) taus.push_back(4);

  harness::Table table({"tau", "groups", "partitions", "total msgs", "max/rnd",
                        "ratio vs tau=1", "tau^2", "min breaking coalition"});

  std::vector<harness::ScenarioConfig> grid;
  for (std::uint32_t tau : taus) {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 1000 + tau;
    cfg.rounds = 320;
    cfg.protocol = harness::Protocol::kCongos;
    cfg.congos.tau = tau;
    cfg.congos.allow_degenerate = false;  // measure the pipeline, not Thm 16's
                                          // small-n direct cutoff
    cfg.workload = harness::WorkloadKind::kContinuous;
    cfg.continuous.inject_prob = 0.01;
    cfg.continuous.dest_min = 2;
    cfg.continuous.dest_max = 6;
    cfg.continuous.deadlines = {64};
    cfg.measure_from = 128;
    grid.push_back(cfg);
  }
  harness::SweepRunner::Options opts;
  opts.label = "E5";
  const auto results = harness::run_sweep(grid, opts);

  double base_total = 0;
  bool ok = true;
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const std::uint32_t tau = taus[i];
    const auto& r = results[i];
    if (tau == 1) base_total = static_cast<double>(r.total_messages);
    const auto parts = core::CongosProcess::build_partitions(n, grid[i].congos);

    std::string coalition =
        r.weakest_coalition == SIZE_MAX ? "unbreakable"
                                        : std::to_string(r.weakest_coalition);
    table.row({harness::cell(static_cast<std::uint64_t>(tau)),
               harness::cell(static_cast<std::uint64_t>(tau + 1)),
               harness::cell(static_cast<std::uint64_t>(parts->count())),
               harness::cell(r.total_messages), harness::cell(r.max_per_round),
               harness::cell(static_cast<double>(r.total_messages) / base_total, 2),
               harness::cell(static_cast<double>(tau) * tau, 0), coalition});

    ok = ok && r.qod.ok() && r.leaks == 0 && r.weakest_coalition > tau;
  }
  table.print(std::cout);
  std::printf("\n%s\n", ok ? "OK: coalition bound holds at every tau; cost grows "
                             "with tau as predicted."
                           : "UNEXPECTED: see table.");
  return ok ? 0 : 1;
}
