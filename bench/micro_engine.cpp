// Microbenchmarks: simulator round throughput (how much system we can
// afford to simulate) for an idle system, plain gossip, and full CONGOS.
#include <benchmark/benchmark.h>

#include "adversary/adversary.h"
#include "adversary/workload.h"
#include "harness/scenario.h"

namespace {

using namespace congos;

void BM_EngineIdleRounds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.rounds = 1;
  cfg.workload = harness::WorkloadKind::kNone;
  for (auto _ : state) {
    auto r = harness::run_scenario(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineIdleRounds)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_PlainGossipRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.rounds = 128;
  cfg.protocol = harness::Protocol::kPlainGossip;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {64};
  for (auto _ : state) {
    auto r = harness::run_scenario(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PlainGossipRun)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// The headline throughput number tracked in BENCH_engine.json
// (tools/check_bench.sh): simulated rounds per second of the full message
// hot path (gossip dispatch + delivery + confidentiality audit) at n=1024.
// `rounds_per_sec` is the figure of merit; it must not regress across PRs.
// The engine thread count comes from CONGOS_ENGINE_THREADS (check_bench.sh
// defaults it to 4 and stamps it into every record).
void BM_HotPathRounds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.rounds = 32;
  cfg.protocol = harness::Protocol::kPlainGossip;
  // Workload scaling with n. Up to 1024 this is the historical configuration
  // (records comparable back through the trajectory). Above it the
  // per-process injection probability shrinks so the *absolute* injection
  // rate (~20 rumors/round) stays constant — the engine scales, the rumor
  // load does not. Above 4096 even one saturated rumor means every process
  // gossips every round (~3n envelopes/round), so the largest configuration
  // switches to a sparse regime — quadratically scaled injection and a short
  // deadline — measuring per-round engine overhead at scale instead of an
  // epidemic flood.
  const double scale = 1024.0 / static_cast<double>(n);
  cfg.continuous.inject_prob =
      n <= 1024 ? 0.02 : (n <= 4096 ? 0.02 * scale : 0.02 * scale * scale);
  const Round deadline = n <= 4096 ? 16 : 8;
  cfg.continuous.deadlines = {deadline};
  const double rounds_per_iter =
      static_cast<double>(cfg.rounds + deadline + 2);  // incl. drain window
  for (auto _ : state) {
    auto r = harness::run_scenario(cfg);
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds_per_sec"] = benchmark::Counter(
      rounds_per_iter * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HotPathRounds)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_CongosRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.rounds = 128;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.continuous.inject_prob = 0.02;
  cfg.continuous.deadlines = {64};
  for (auto _ : state) {
    auto r = harness::run_scenario(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CongosRun)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
