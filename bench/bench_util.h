// Shared helpers for the experiment binaries.
//
// Every exp_* binary regenerates one experiment from DESIGN.md's
// per-experiment index (EXPERIMENTS.md records the resulting numbers).
// Default parameters finish in tens of seconds; set CONGOS_BENCH_SCALE=full
// for the larger sweeps quoted in EXPERIMENTS.md. Grids run through
// harness::SweepRunner; CONGOS_BENCH_THREADS caps the worker count
// (default: hardware concurrency).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/sweep.h"

namespace congos::bench {

/// CONGOS_BENCH_SCALE=full. Parsed once — sweep loops may call this per
/// scenario and must not re-read the environment each time.
inline bool full_scale() {
  static const bool cached = [] {
    const char* v = std::getenv("CONGOS_BENCH_SCALE");
    return v != nullptr && std::strcmp(v, "full") == 0;
  }();
  return cached;
}

/// Worker threads the sweep runner will use (CONGOS_BENCH_THREADS, else
/// hardware concurrency). Cached like full_scale().
inline std::size_t threads() { return harness::SweepRunner::default_threads(); }

inline void banner(const char* exp_id, const char* claim) {
  std::printf("=== %s ===\n%s\n", exp_id, claim);
  std::printf(
      "(scale: %s, threads: %zu; CONGOS_BENCH_SCALE=full for the larger sweep, "
      "CONGOS_BENCH_THREADS=k to cap workers)\n\n",
      full_scale() ? "full" : "default", threads());
}

}  // namespace congos::bench
