// Shared helpers for the experiment binaries.
//
// Every exp_* binary regenerates one experiment from DESIGN.md's
// per-experiment index (EXPERIMENTS.md records the resulting numbers).
// Default parameters finish in tens of seconds; set CONGOS_BENCH_SCALE=full
// for the larger sweeps quoted in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

namespace congos::bench {

inline bool full_scale() {
  const char* v = std::getenv("CONGOS_BENCH_SCALE");
  return v != nullptr && std::strcmp(v, "full") == 0;
}

inline void banner(const char* exp_id, const char* claim) {
  std::printf("=== %s ===\n%s\n", exp_id, claim);
  std::printf("(scale: %s; set CONGOS_BENCH_SCALE=full for the larger sweep)\n\n",
              full_scale() ? "full" : "default");
}

}  // namespace congos::bench
