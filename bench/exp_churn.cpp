// E8 (robustness): delivery under increasing crash/restart churn.
//
// The paper requires delivery only for rumors whose source and destination
// stay continuously alive; everything else is best-effort. We sweep the
// per-round crash probability and report: how many (rumor, dest) pairs stay
// admissible, the on-time rate among them (must be 100%), bonus deliveries
// to non-admissible pairs, fallback usage, and confidentiality (must stay
// clean no matter the churn).
#include "bench_util.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

int main() {
  bench::banner("E8 / robustness",
                "Quality of Delivery and confidentiality under crash/restart "
                "churn (admissible pairs must always arrive on time).");

  const std::size_t n = bench::full_scale() ? 96 : 48;
  const std::vector<double> crash_probs = {0.0, 0.002, 0.005, 0.01, 0.02};

  harness::Table table({"crash prob", "crashes+restarts seen", "admissible",
                        "on-time", "on-time %", "bonus", "shoots", "leaks"});

  std::vector<harness::ScenarioConfig> grid;
  for (double cp : crash_probs) {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = static_cast<std::uint64_t>(cp * 100000) + 33;
    cfg.rounds = 384;
    cfg.protocol = harness::Protocol::kCongos;
    cfg.workload = harness::WorkloadKind::kContinuous;
    cfg.continuous.inject_prob = 0.015;
    cfg.continuous.dest_min = 2;
    cfg.continuous.dest_max = 6;
    cfg.continuous.deadlines = {64};
    cfg.measure_from = 128;
    if (cp > 0) {
      cfg.churn = adversary::RandomChurn::Options{};
      cfg.churn->crash_prob = cp;
      cfg.churn->restart_prob = 0.05;
      cfg.churn->min_alive = 6;
    }
    grid.push_back(cfg);
  }
  harness::SweepRunner::Options opts;
  opts.label = "E8";
  const auto results = harness::run_sweep(grid, opts);

  bool ok = true;
  for (std::size_t i = 0; i < crash_probs.size(); ++i) {
    const double cp = crash_probs[i];
    const auto& r = results[i];
    const double pct =
        r.qod.admissible_pairs == 0
            ? 100.0
            : 100.0 * static_cast<double>(r.qod.delivered_on_time) /
                  static_cast<double>(r.qod.admissible_pairs);
    table.row({harness::cell(cp, 3), harness::cell(r.crashes + r.restarts),
               harness::cell(r.qod.admissible_pairs),
               harness::cell(r.qod.delivered_on_time), harness::cell(pct, 1),
               harness::cell(r.qod.bonus_deliveries), harness::cell(r.cg_shoots),
               harness::cell(r.leaks)});
    ok = ok && r.qod.ok() && r.leaks == 0;
  }
  table.print(std::cout);
  std::printf("\n%s\n",
              ok ? "OK: 100%% on-time for admissible pairs at every churn level."
                 : "UNEXPECTED: QoD or confidentiality violated.");
  return ok ? 0 : 1;
}
