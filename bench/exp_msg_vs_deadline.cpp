// E4 (Theorem 11, deadline dependence): per-round message complexity vs the
// rumor deadline at fixed n.
//
// The n^{1+E/sqrt(dline)} fan-out term shrinks as deadlines grow: with more
// time, the services can afford smaller per-iteration fan-outs. We sweep the
// deadline and report CONGOS's peak/mean per-round complexity, the shape
// prediction, and the fallback usage (tight deadlines leave less slack for
// the confirmation pipeline).
#include <cmath>

#include "bench_util.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

int main() {
  bench::banner("E4 / Theorem 11 (deadline axis)",
                "CONGOS per-round message complexity falls as deadlines grow "
                "(the n^{1+E/sqrt(d)} term; n fixed).");

  const std::size_t n = bench::full_scale() ? 128 : 64;
  std::vector<Round> deadlines = {32, 64, 128, 256};
  if (bench::full_scale()) deadlines.push_back(512);

  harness::Table table({"deadline", "eff. class", "congos max/rnd", "mean/rnd",
                        "shape n^{1+6/sqrt(d)}", "shoots", "mean latency"});

  std::vector<harness::ScenarioConfig> grid;
  for (Round d : deadlines) {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 11 * static_cast<std::uint64_t>(d) + 5;
    cfg.rounds = std::max<Round>(4 * d, 256);
    cfg.workload = harness::WorkloadKind::kContinuous;
    // Hold the expected number of *concurrently active* rumors constant
    // across the sweep (rumor lifetime scales with d), so the deadline's
    // effect on the fan-outs is isolated from sheer rumor load.
    cfg.continuous.inject_prob = 0.02 * 64.0 / static_cast<double>(d);
    cfg.continuous.dest_min = 2;
    cfg.continuous.dest_max = 8;
    cfg.continuous.deadlines = {d};
    cfg.measure_from = 2 * d;
    cfg.audit_confidentiality = false;  // cost sweep; E2 audits payloads
    cfg.protocol = harness::Protocol::kCongos;
    grid.push_back(cfg);
  }
  harness::SweepRunner::Options opts;
  opts.label = "E4";
  const auto results = harness::run_sweep(grid, opts);

  for (std::size_t i = 0; i < deadlines.size(); ++i) {
    const Round d = deadlines[i];
    const auto& cfg = grid[i];
    const auto& r = results[i];
    const double shape =
        std::pow(static_cast<double>(n), 1.0 + 6.0 / std::sqrt(static_cast<double>(d)));
    table.row({harness::cell(static_cast<std::uint64_t>(d)),
               harness::cell(static_cast<std::uint64_t>(
                   core::effective_deadline(d, cfg.congos))),
               harness::cell(r.max_per_round), harness::cell(r.mean_per_round, 1),
               harness::cell(shape, 0), harness::cell(r.cg_shoots),
               harness::cell(r.qod.mean_latency, 1)});

    if (!r.qod.ok() || r.leaks != 0) {
      std::printf("UNEXPECTED: correctness violation at d=%lld\n",
                  static_cast<long long>(d));
      return 1;
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: per-round cost falls as the deadline grows - longer deadlines\n"
      "buy cheaper rounds, Theorem 11's trade. The mean tracks the shrinking\n"
      "shape column; the peak falls more slowly because the per-iteration\n"
      "request bursts saturate their candidate pools at this n.\n");
  return 0;
}
