// E13 (Lemmas 8-10 timing): how early in the deadline window rumors land.
//
// The pipeline argument bounds delivery by ~3 blocks (3/4 of the effective
// deadline) and confirmation one block later; the deadline fallback covers
// the rest deterministically. We sweep (n, deadline) and report the delivery
// latency distribution as a *fraction of the deadline* - the p95 should sit
// comfortably below 1.0 and the fallback column near zero.
#include "bench_util.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

int main() {
  bench::banner("E13 / Lemmas 8-10",
                "Delivery latency distribution within the deadline window "
                "(p95/deadline well below 1.0; fallback near zero).");

  harness::Table table({"n", "deadline", "mean lat", "p50", "p95", "max",
                        "p95/deadline", "p95 msg/rnd", "shoots", "on-time %"});

  std::vector<std::pair<std::size_t, Round>> params = {
      {32, 64}, {32, 128}, {64, 64}, {64, 256}};
  if (bench::full_scale()) params.push_back({128, 128});

  std::vector<harness::ScenarioConfig> grid;
  for (auto [n, d] : params) {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 7777 + n + static_cast<std::uint64_t>(d);
    cfg.rounds = std::max<Round>(4 * d, 256);
    cfg.protocol = harness::Protocol::kCongos;
    cfg.workload = harness::WorkloadKind::kContinuous;
    cfg.continuous.inject_prob = 0.02 * 64.0 / static_cast<double>(d);
    cfg.continuous.dest_min = 2;
    cfg.continuous.dest_max = 8;
    cfg.continuous.deadlines = {d};
    cfg.measure_from = 2 * d;
    cfg.audit_confidentiality = false;
    grid.push_back(cfg);
  }
  harness::SweepRunner::Options opts;
  opts.label = "E13";
  const auto results = harness::run_sweep(grid, opts);

  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto [n, d] = params[i];
    const auto& r = results[i];
    const double pct = r.qod.admissible_pairs == 0
                           ? 100.0
                           : 100.0 * static_cast<double>(r.qod.delivered_on_time) /
                                 static_cast<double>(r.qod.admissible_pairs);
    table.row({harness::cell(static_cast<std::uint64_t>(n)),
               harness::cell(static_cast<std::uint64_t>(d)),
               harness::cell(r.qod.mean_latency, 1),
               harness::cell(static_cast<std::uint64_t>(r.qod.latency_p50)),
               harness::cell(static_cast<std::uint64_t>(r.qod.latency_p95)),
               harness::cell(static_cast<std::uint64_t>(r.qod.latency_max)),
               harness::cell(static_cast<double>(r.qod.latency_p95) /
                                 static_cast<double>(d),
                             2),
               // steady-state message percentile (warm-up excluded via
               // percentile_from(measure_from, .)).
               harness::cell(r.p95_per_round),
               harness::cell(r.cg_shoots), harness::cell(pct, 1)});
    if (!r.qod.ok()) {
      std::printf("UNEXPECTED: QoD violation at n=%zu d=%lld\n", n,
                  static_cast<long long>(d));
      return 1;
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: delivery completes in roughly half the deadline window (the\n"
      "4-block pipeline of Section 4.3), with the p95 well inside the budget -\n"
      "the deterministic fallback is an insurance policy, not the delivery path.\n");
  return 0;
}
