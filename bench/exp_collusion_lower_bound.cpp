// E6 (Theorem 12): border messages of partition-based algorithms.
//
// Theorem 12: any tau-collusion-tolerant partition-based algorithm, under
// the Theorem-1 destination sets, sends Omega(min{n*tau, n^{3/2-eps}})
// "border messages" - messages carrying rumor fragments from the destination
// set (or source) to processes outside it. The intuition: fewer than tau+1
// escaping fragments per rumor would let tau colluders reconstruct it, so
// fragments *must* leak outward in bulk.
//
// We count border messages in actual CONGOS executions (a BorderCounter
// observer inspects every delivered fragment payload) and compare with the
// (tau+1)*n/2 floor from the proof of Theorem 12.
#include "adversary/adversary.h"
#include "adversary/workload.h"
#include "audit/confidentiality.h"
#include "audit/qod.h"
#include "bench_util.h"
#include "congos/congos_process.h"
#include "gossip/continuous_gossip.h"
#include "harness/table.h"

using namespace congos;

namespace {

/// Counts messages that carry at least one fragment across a rumor's
/// destination-set border (from inside dest+source to outside).
class BorderCounter final : public sim::ExecutionObserver {
 public:
  void on_inject(const sim::Rumor& rumor, Round) override {
    rumors_.emplace(rumor.uid, rumor.dest);
  }

  void on_envelope_delivered(const sim::Envelope& e, Round) override {
    bool border = false;
    auto check = [&](const core::Fragment& f) {
      auto it = rumors_.find(f.meta.key.rumor);
      if (it == rumors_.end()) return;
      const bool from_inside =
          it->second.test(e.from) || e.from == f.meta.key.rumor.source;
      const bool to_outside =
          !it->second.test(e.to) && e.to != f.meta.key.rumor.source;
      if (from_inside && to_outside) border = true;
    };
    if (e.body == nullptr) return;
    if (e.body->kind() == sim::PayloadKind::kGossipMsg) {
      const auto& msg = static_cast<const gossip::GossipMsg&>(*e.body);
      for (const auto& r : msg.rumors) {
        if (r.body == nullptr) continue;
        if (r.body->kind() == sim::PayloadKind::kFragment) {
          check(static_cast<const core::FragmentBody&>(*r.body).fragment);
        } else if (r.body->kind() == sim::PayloadKind::kProxyShare) {
          const auto& ps = static_cast<const core::ProxyShareBody&>(*r.body);
          for (const auto& f : ps.proxied) check(f);
        }
      }
    } else if (e.body->kind() == sim::PayloadKind::kProxyRequest) {
      const auto& req = static_cast<const core::ProxyRequestPayload&>(*e.body);
      for (const auto& f : req.fragments) check(f);
    }
    if (border) ++count_;
  }

  std::uint64_t count() const { return count_; }

 private:
  std::unordered_map<RumorUid, DynamicBitset> rumors_;
  std::uint64_t count_ = 0;
};

}  // namespace

int main() {
  bench::banner("E6 / Theorem 12",
                "Partition-based tau-tolerant confidential gossip must push "
                ">= (tau+1)*n/2c fragments across destination-set borders.");

  const std::size_t n = bench::full_scale() ? 96 : 64;
  std::vector<std::uint32_t> taus = {1, 2, 3};

  harness::Table table(
      {"tau", "border msgs", "floor (tau+1)n/2", "ratio", "leaks"});

  // One scenario per tau, each with its own BorderCounter registered as an
  // extra observer (per-grid-entry state: the scenarios run on worker
  // threads). The Theorem-1 workload and 90+128+2 round schedule match the
  // hand-built engine this sweep replaced.
  std::vector<BorderCounter> borders(taus.size());
  std::vector<harness::ScenarioConfig> grid;
  for (std::size_t i = 0; i < taus.size(); ++i) {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 500 + taus[i];
    cfg.rounds = 90;
    cfg.protocol = harness::Protocol::kCongos;
    cfg.congos.tau = taus[i];
    cfg.congos.allow_degenerate = false;
    cfg.workload = harness::WorkloadKind::kTheorem1;
    cfg.theorem1.x = 4.0;
    cfg.theorem1.dmax = 128;
    cfg.extra_observers.push_back(&borders[i]);
    grid.push_back(cfg);
  }
  harness::SweepRunner::Options opts;
  opts.label = "E6";
  const auto results = harness::run_sweep(grid, opts);

  for (std::size_t i = 0; i < taus.size(); ++i) {
    const std::uint32_t tau = taus[i];
    const double floor = static_cast<double>(tau + 1) * static_cast<double>(n) / 2.0;
    table.row({harness::cell(static_cast<std::uint64_t>(tau)),
               harness::cell(borders[i].count()), harness::cell(floor, 0),
               harness::cell(static_cast<double>(borders[i].count()) / floor, 1),
               harness::cell(results[i].leaks)});
    if (results[i].leaks != 0) {
      std::printf("UNEXPECTED: leak at tau=%u\n", tau);
      return 1;
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: measured border traffic sits far above the Theorem 12 floor and\n"
      "grows with tau - the leakage-in-fragments that collusion tolerance forces.\n");
  return 0;
}
