// Microbenchmarks: the allocation-free building blocks of the round engine
// (DESIGN.md section 9) against their standard-library counterparts.
//
// FlatMap vs std::unordered_map on the access patterns the gossip hot path
// actually performs (find-heavy steady state, insert/erase churn, ordered
// iteration), and PayloadPool vs make_shared for the per-round payload
// cycle.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "common/pool.h"
#include "common/rng.h"

namespace {

using namespace congos;

/// Deterministic key stream shaped like gossip gids: sparse 64-bit values.
std::vector<std::uint64_t> make_keys(std::size_t count) {
  Rng rng(0xbe9cull);
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) keys.push_back(rng.next());
  return keys;
}

template <typename Map>
void lookup_heavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(n);
  Map map;
  for (std::size_t i = 0; i < n; ++i) map.emplace(keys[i], i);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    // 8 probes per resident key: the steady-state accept() mix, where every
    // incoming rumor is already known and find() is the whole story.
    for (int rep = 0; rep < 8; ++rep) {
      for (const auto k : keys) sum += map.find(k)->second;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * 8);
}

void BM_FlatMapLookup(benchmark::State& state) {
  lookup_heavy<FlatMap<std::uint64_t, std::uint64_t>>(state);
}
void BM_UnorderedMapLookup(benchmark::State& state) {
  lookup_heavy<std::unordered_map<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapLookup)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_UnorderedMapLookup)->Arg(64)->Arg(1024)->Arg(16384);

template <typename Map>
void churn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(2 * n);
  for (auto _ : state) {
    Map map;
    // Rumor lifecycle: insert a window, erase the expired half, insert the
    // next window - the purge_expired()/accept() cycle.
    for (std::size_t i = 0; i < n; ++i) map.emplace(keys[i], i);
    for (std::size_t i = 0; i < n / 2; ++i) map.erase(keys[i]);
    for (std::size_t i = n; i < 2 * n; ++i) map.emplace(keys[i], i);
    benchmark::DoNotOptimize(map);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * 2);
}

void BM_FlatMapChurn(benchmark::State& state) {
  churn<FlatMap<std::uint64_t, std::uint64_t>>(state);
}
void BM_UnorderedMapChurn(benchmark::State& state) {
  churn<std::unordered_map<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapChurn)->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_UnorderedMapChurn)->Arg(64)->Arg(1024)->Arg(16384);

template <typename Map>
void iterate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(n);
  Map map;
  for (std::size_t i = 0; i < n; ++i) map.emplace(keys[i], i);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    // Whole-table sweeps back the per-round batch rebuild and the auditors.
    for (const auto& [k, v] : map) sum += k ^ v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_FlatMapIterate(benchmark::State& state) {
  iterate<FlatMap<std::uint64_t, std::uint64_t>>(state);
}
void BM_UnorderedMapIterate(benchmark::State& state) {
  iterate<std::unordered_map<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapIterate)->Arg(1024)->Arg(16384);
BENCHMARK(BM_UnorderedMapIterate)->Arg(1024)->Arg(16384);

/// A payload-sized object with a reusable buffer, as the pooled gossip
/// payloads have.
struct BenchPayload {
  std::vector<std::uint64_t> data;
  void reuse() { data.clear(); }
};

void BM_PooledPayloadCycle(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  PayloadPool<BenchPayload> pool;
  std::vector<std::shared_ptr<BenchPayload>> held;
  held.reserve(live);
  // Warm the pool (and the payload buffers) to steady state.
  for (std::size_t i = 0; i < live; ++i) {
    auto p = pool.acquire();
    p->data.resize(64);
    held.push_back(std::move(p));
  }
  held.clear();
  for (auto _ : state) {
    // One round: acquire `live` payloads, fill, release them all - the
    // send_phase / end_round cycle.
    for (std::size_t i = 0; i < live; ++i) {
      auto p = pool.acquire();
      p->data.resize(64);
      held.push_back(std::move(p));
    }
    held.clear();
    benchmark::DoNotOptimize(pool);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(live));
}

void BM_MakeSharedPayloadCycle(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  std::vector<std::shared_ptr<BenchPayload>> held;
  held.reserve(live);
  for (auto _ : state) {
    for (std::size_t i = 0; i < live; ++i) {
      auto p = std::make_shared<BenchPayload>();
      p->data.resize(64);
      held.push_back(std::move(p));
    }
    held.clear();
    benchmark::DoNotOptimize(held);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(live));
}
BENCHMARK(BM_PooledPayloadCycle)->Arg(64)->Arg(1024);
BENCHMARK(BM_MakeSharedPayloadCycle)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
