// E12 (ablations): the design knobs DESIGN.md calls out.
//
// Three sweeps on the same workload:
//   1. fanout_exponent (the paper's "48"): larger exponents buy faster
//      in-block convergence with bigger per-iteration bursts;
//   2. gossip_fanout (the epidemic black-box fanout): the gossip-vs-service
//      traffic split;
//   3. partition_c (collusion partition count multiplier, tau = 2): more
//      partitions, more redundancy, more messages.
// All rows must keep QoD intact; what moves is cost and fallback usage.
#include <iterator>

#include "bench_util.h"
#include "congos/congos_process.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

namespace {

harness::ScenarioConfig base(std::size_t n, std::uint64_t seed) {
  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.rounds = 320;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.workload = harness::WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.01;
  cfg.continuous.dest_min = 2;
  cfg.continuous.dest_max = 6;
  cfg.continuous.deadlines = {64};
  cfg.measure_from = 128;
  cfg.audit_confidentiality = false;
  return cfg;
}

}  // namespace

int main() {
  bench::banner("E12 / ablations",
                "Effect of the configuration constants on cost (QoD must hold "
                "in every row).");

  const std::size_t n = 64;

  // All four ablation axes flattened into one grid so the sweep runner can
  // execute every configuration concurrently; offsets index back per axis.
  const std::vector<double> exponents = {2.0, 6.0, 12.0, 48.0};
  const std::vector<int> fanouts = {1, 2, 3, 6};
  const std::vector<double> partition_cs = {1.0, 2.0, 4.0};
  const std::pair<gossip::GossipStrategy, const char*> strategies[] = {
      {gossip::GossipStrategy::kEpidemicPush, "epidemic push (random)"},
      {gossip::GossipStrategy::kExpander, "expander (deterministic)"},
      {gossip::GossipStrategy::kPushPull, "push-pull (Karp et al.)"},
  };

  std::vector<harness::ScenarioConfig> grid;
  for (double e : exponents) {
    auto cfg = base(n, 71);
    cfg.congos.fanout_exponent = e;
    grid.push_back(cfg);
  }
  const std::size_t off_fanout = grid.size();
  for (int f : fanouts) {
    auto cfg = base(n, 72);
    cfg.congos.gossip_fanout = f;
    grid.push_back(cfg);
  }
  const std::size_t off_partition = grid.size();
  for (double c : partition_cs) {
    auto cfg = base(n, 73);
    cfg.congos.tau = 2;
    cfg.congos.allow_degenerate = false;
    cfg.congos.partition_c = c;
    grid.push_back(cfg);
  }
  const std::size_t off_strategy = grid.size();
  for (const auto& [strategy, name] : strategies) {
    auto cfg = base(n, 74);
    cfg.congos.gossip_strategy = strategy;
    grid.push_back(cfg);
  }

  harness::SweepRunner::Options opts;
  opts.label = "E12";
  const auto results = harness::run_sweep(grid, opts);
  for (const auto& r : results) {
    if (!r.qod.ok()) return 1;
  }

  {
    harness::Table t({"fanout_exponent", "max/rnd", "mean/rnd", "shoots",
                      "mean latency"});
    for (std::size_t i = 0; i < exponents.size(); ++i) {
      const auto& r = results[i];
      t.row({harness::cell(exponents[i], 0), harness::cell(r.max_per_round),
             harness::cell(r.mean_per_round, 1), harness::cell(r.cg_shoots),
             harness::cell(r.qod.mean_latency, 1)});
    }
    std::printf("-- ablation 1: service fan-out exponent (paper: 48) --\n");
    t.print(std::cout);
    std::printf("\n");
  }

  {
    harness::Table t({"gossip_fanout", "max/rnd", "mean/rnd", "shoots",
                      "mean latency"});
    for (std::size_t i = 0; i < fanouts.size(); ++i) {
      const auto& r = results[off_fanout + i];
      t.row({harness::cell(static_cast<std::uint64_t>(fanouts[i])),
             harness::cell(r.max_per_round), harness::cell(r.mean_per_round, 1),
             harness::cell(r.cg_shoots), harness::cell(r.qod.mean_latency, 1)});
    }
    std::printf("-- ablation 2: epidemic fan-out of the gossip black box --\n");
    t.print(std::cout);
    std::printf("\n");
  }

  {
    harness::Table t({"partition_c (tau=2)", "partitions", "max/rnd", "total msgs",
                      "shoots"});
    for (std::size_t i = 0; i < partition_cs.size(); ++i) {
      const auto& r = results[off_partition + i];
      const auto parts =
          core::CongosProcess::build_partitions(n, grid[off_partition + i].congos);
      t.row({harness::cell(partition_cs[i], 1),
             harness::cell(static_cast<std::uint64_t>(parts->count())),
             harness::cell(r.max_per_round), harness::cell(r.total_messages),
             harness::cell(r.cg_shoots)});
    }
    std::printf("-- ablation 3: collusion partition count multiplier --\n");
    t.print(std::cout);
    std::printf("\n");
  }

  {
    harness::Table t({"gossip strategy", "max/rnd", "mean/rnd", "shoots",
                      "mean latency", "total msgs"});
    for (std::size_t i = 0; i < std::size(strategies); ++i) {
      const auto& r = results[off_strategy + i];
      t.row({strategies[i].second, harness::cell(r.max_per_round),
             harness::cell(r.mean_per_round, 1), harness::cell(r.cg_shoots),
             harness::cell(r.qod.mean_latency, 1), harness::cell(r.total_messages)});
    }
    std::printf("-- ablation 4: gossip black-box dissemination strategies --\n");
    t.print(std::cout);
  }

  std::printf("\nOK: QoD held in every configuration.\n");
  return 0;
}
