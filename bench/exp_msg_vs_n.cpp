// E3 (Theorem 11): per-round message complexity vs n.
//
// Fixed deadline (within the near-linear regime), fixed per-process
// injection rate; sweep n. Theorem 11 predicts CONGOS's maximum per-round
// complexity scales like n^{1+E/sqrt(d)} polylog n - near-linear in n once
// deadlines are comfortable. We report the peak and mean per-round message
// counts for CONGOS and the baselines, plus CONGOS's peak normalized by
// n^{1+E/sqrt(d)}*log^2 n (the theorem's shape; roughly flat if the shape
// holds).
#include <cmath>

#include "bench_util.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

int main() {
  bench::banner("E3 / Theorem 11",
                "CONGOS per-round message complexity vs n at fixed deadline d=64 "
                "(shape: n^{1+E/sqrt(d)} polylog n, E = fanout_exponent = 6).");

  // n = 16 is excluded: tau = 1 >= 16/log2(16)^2 triggers the Theorem 16
  // degenerate cutoff and CONGOS sends everything directly.
  std::vector<std::size_t> ns = {32, 64, 128};
  if (bench::full_scale()) ns.push_back(256);
  const Round deadline = 64;

  // Byte columns report ACTUAL wire-codec frame sizes (src/wire); "model
  // delta" is actual/modeled vs the legacy fixed-width size model.
  harness::Table table({"n", "congos max/rnd", "congos mean/rnd", "congos p95/rnd",
                        "normalized", "congos MB (wire)", "model delta",
                        "direct max/rnd", "paced max/rnd", "plain max/rnd"});

  // (n x protocol) grid, executed through the sweep runner: every point is an
  // independent seeded scenario, so results are identical to serial runs.
  const harness::Protocol protocols[] = {
      harness::Protocol::kCongos, harness::Protocol::kDirect,
      harness::Protocol::kDirectPaced, harness::Protocol::kPlainGossip};
  std::vector<harness::ScenarioConfig> grid;
  for (std::size_t n : ns) {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 7 * n + 1;
    cfg.rounds = 384;
    cfg.workload = harness::WorkloadKind::kContinuous;
    cfg.continuous.inject_prob = 0.02;
    cfg.continuous.dest_min = 2;
    cfg.continuous.dest_max = 8;
    cfg.continuous.deadlines = {deadline};
    cfg.measure_from = 2 * deadline;
    // Pure cost sweep: confidentiality is machine-checked in E2; skipping the
    // per-envelope payload inspection here keeps large n affordable.
    cfg.audit_confidentiality = false;
    for (harness::Protocol p : protocols) {
      cfg.protocol = p;
      grid.push_back(cfg);
    }
  }
  harness::SweepRunner::Options opts;
  opts.label = "E3";
  const auto results = harness::run_sweep(grid, opts);

  for (std::size_t i = 0; i < ns.size(); ++i) {
    const std::size_t n = ns[i];
    const auto& congos = results[4 * i + 0];
    const auto& direct = results[4 * i + 1];
    const auto& paced = results[4 * i + 2];
    const auto& plain = results[4 * i + 3];

    const double nd = static_cast<double>(n);
    const double shape = std::pow(nd, 1.0 + 6.0 / std::sqrt(static_cast<double>(
                                            deadline))) *
                         std::pow(std::max(1.0, std::log2(nd)), 2.0);
    table.row({harness::cell(static_cast<std::uint64_t>(n)),
               harness::cell(congos.max_per_round),
               harness::cell(congos.mean_per_round, 1),
               // steady-state percentile: excludes the warm-up rounds, like
               // max/mean (percentile_from(measure_from, .)).
               harness::cell(congos.p95_per_round),
               harness::cell(static_cast<double>(congos.max_per_round) / shape, 4),
               harness::cell(static_cast<double>(congos.total_bytes) /
                                 (1024.0 * 1024.0),
                             1),
               harness::cell(static_cast<double>(congos.total_bytes) /
                                 static_cast<double>(congos.total_bytes_modeled),
                             2),
               harness::cell(direct.max_per_round), harness::cell(paced.max_per_round),
               harness::cell(plain.max_per_round)});

    if (!congos.qod.ok() || congos.leaks != 0) {
      std::printf("UNEXPECTED: CONGOS correctness violation at n=%zu\n", n);
      return 1;
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: the 'normalized' column (peak / n^{1+6/sqrt(64)} log^2 n) stays\n"
      "roughly flat, matching Theorem 11's shape; plain gossip is cheaper but\n"
      "leaks; direct send is cheap here because destination sets are small -\n"
      "E1 shows where it loses. 'congos MB (wire)' is actual encoded bytes;\n"
      "'model delta' (actual/modeled) shows what the compact codec saves.\n");
  return 0;
}
