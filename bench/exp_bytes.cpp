// E15 (Section 7, communication complexity): bits, not just messages.
//
// The paper is explicit that its efficiency metric counts messages, and that
// if rumors are large and cannot be merged, the *bit* complexity tells a
// different story: collaborative dissemination replicates every fragment
// across whole groups, so CONGOS moves ~n copies of each rumor's worth of
// data, while direct sending moves |D| copies. We sweep the rumor payload
// size and report bytes per (real) rumor for CONGOS vs direct send - the
// honest cost of confidential collaboration.
//
// Byte columns are ACTUAL encoded sizes under the versioned wire codec
// (src/wire): exactly what encode_envelope() emits, frame header and
// checksum included. The "model delta" column is the modeled-vs-actual
// ratio against the legacy fixed-width size model - what varint/delta-gid/
// batched-fragment encoding buys on real traffic.
#include "bench_util.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

int main() {
  bench::banner("E15 / Section 7 (communication complexity)",
                "Bytes moved per rumor as payloads grow: collaboration "
                "replicates fragments group-wide; direct send moves |D| copies.");

  const std::size_t n = 48;
  harness::Table table({"payload B", "congos msgs/rumor", "congos KB/rumor",
                        "direct KB/rumor", "byte ratio", "congos peak KB/rnd",
                        "model delta"});

  const std::vector<std::size_t> payloads = {16, 256, 4096};
  std::vector<harness::ScenarioConfig> grid;
  for (std::size_t payload : payloads) {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 55;
    cfg.rounds = 320;
    cfg.workload = harness::WorkloadKind::kContinuous;
    cfg.continuous.inject_prob = 0.01;
    cfg.continuous.dest_min = 4;
    cfg.continuous.dest_max = 4;
    cfg.continuous.deadlines = {64};
    cfg.continuous.payload_len = payload;
    cfg.measure_from = 128;
    cfg.audit_confidentiality = false;
    cfg.protocol = harness::Protocol::kCongos;
    grid.push_back(cfg);
    cfg.protocol = harness::Protocol::kDirect;
    grid.push_back(cfg);
  }
  harness::SweepRunner::Options opts;
  opts.label = "E15";
  const auto results = harness::run_sweep(grid, opts);

  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const std::size_t payload = payloads[i];
    const auto& congos = results[2 * i + 0];
    const auto& direct = results[2 * i + 1];
    if (!congos.qod.ok() || !direct.qod.ok()) return 1;

    const double c_kb = static_cast<double>(congos.total_bytes) /
                        static_cast<double>(congos.injected) / 1024.0;
    const double d_kb = static_cast<double>(direct.total_bytes) /
                        static_cast<double>(direct.injected) / 1024.0;
    table.row({harness::cell(static_cast<std::uint64_t>(payload)),
               harness::cell(static_cast<double>(congos.total_messages) /
                                 static_cast<double>(congos.injected),
                             0),
               harness::cell(c_kb, 1), harness::cell(d_kb, 1),
               harness::cell(c_kb / d_kb, 0),
               harness::cell(static_cast<double>(congos.max_bytes_per_round) / 1024.0,
                             0),
               // actual / modeled: < 1 means the codec beats the old
               // fixed-width accounting on this traffic mix
               harness::cell(static_cast<double>(congos.total_bytes) /
                                 static_cast<double>(congos.total_bytes_modeled),
                             2)});
  }
  table.print(std::cout);

  // Where the CONGOS bytes actually go, for the largest payload: the
  // by-service split of total_bytes (MessageStats::total_bytes(kind)).
  const auto& breakdown = results[2 * (payloads.size() - 1)];
  std::printf("\nCONGOS byte breakdown by service (payload %zu B):\n",
              payloads.back());
  for (std::size_t k = 0; k < sim::kNumServiceKinds; ++k) {
    const std::uint64_t bytes = breakdown.total_bytes_by_kind[k];
    if (bytes == 0) continue;
    std::printf("  %-18s %10.1f KB  (%5.1f%%)\n",
                sim::to_string(static_cast<sim::ServiceKind>(k)),
                static_cast<double>(bytes) / 1024.0,
                100.0 * static_cast<double>(bytes) /
                    static_cast<double>(breakdown.total_bytes));
  }
  std::printf(
      "\nByte columns are actual wire-codec frame sizes; 'model delta' is\n"
      "actual/modeled vs the legacy fixed-width model (EXPERIMENTS.md).\n"
      "\nReading: message counts are payload-independent, but bytes scale with\n"
      "payload x replication x epidemic re-pushing (our gossip realization\n"
      "re-sends active rumors every round, so the byte premium over direct send\n"
      "is large and dominated by metadata for small payloads - the ratio falls\n"
      "as payloads amortize it). This is the paper's own caveat, verbatim: 'if\n"
      "the rumors cannot be merged, then gossip protocols may not be efficient'.\n");
  return 0;
}
