// E10 (Lemma 13): constructing the collusion-tolerant partition family.
//
// Lemma 13 proves (probabilistic method) that c*tau*log n random partitions
// of tau+1 groups satisfy Partition-Property 1 (no empty group) and
// Partition-Property 2 (every large-enough subset is split across all groups
// by some partition) for tau < n/log^2 n. We construct the family with
// verification-and-resample and report attempts (predicted: ~1) plus fresh
// adversarial re-checks of both properties; and for tau = 1 we verify the
// Lemma 5 guarantee of the bit partitions (every pair separated).
#include "bench_util.h"
#include "harness/table.h"
#include "partition/algebraic_partition.h"
#include "partition/bit_partition.h"
#include "partition/random_partition.h"

using namespace congos;
using namespace congos::partition;

int main() {
  bench::banner("E10 / Lemma 13",
                "Random partition families pass Partition-Properties 1 and 2 on "
                "the first few attempts for tau < n/log^2 n.");

  harness::Table table({"n", "tau", "partitions", "groups", "attempts",
                        "P1 exact", "P2 subset size", "P2 fresh-pass"});

  std::vector<std::pair<std::size_t, std::uint32_t>> params = {
      {64, 2}, {64, 3}, {128, 2}, {128, 4}, {256, 3}, {256, 5}};
  if (bench::full_scale()) {
    params.push_back({512, 4});
    params.push_back({1024, 6});
  }

  for (auto [n, tau] : params) {
    Rng rng(n * 131 + tau);
    RandomPartitionOptions opt;
    opt.tau = tau;
    const auto result = make_random_partitions(n, opt, rng);
    const auto& set = result.partitions;

    bool p1 = true;
    for (PartitionIndex l = 0; l < set.count(); ++l) p1 = p1 && set[l].well_formed();

    // Fresh Property-2 trials with an independent generator.
    Rng fresh(n * 7919 + tau);
    const std::size_t subset = std::min<std::size_t>(result.property2_subset_size, n);
    int pass = 0;
    const int trials = 500;
    for (int t = 0; t < trials; ++t) {
      auto idx = fresh.sample_without_replacement(static_cast<std::uint32_t>(n),
                                                  static_cast<std::uint32_t>(subset));
      auto s = DynamicBitset::from_indices(n, idx);
      for (PartitionIndex l = 0; l < set.count(); ++l) {
        if (set[l].covers(s)) {
          ++pass;
          break;
        }
      }
    }
    table.row({harness::cell(static_cast<std::uint64_t>(n)),
               harness::cell(static_cast<std::uint64_t>(tau)),
               harness::cell(static_cast<std::uint64_t>(set.count())),
               harness::cell(static_cast<std::uint64_t>(tau + 1)),
               harness::cell(static_cast<std::uint64_t>(result.attempts)),
               p1 ? "yes" : "NO",
               harness::cell(static_cast<std::uint64_t>(subset)),
               harness::cell(100.0 * pass / trials, 1) + "%"});
  }
  table.print(std::cout);

  // The paper's open problem: a deterministic polynomial-time construction.
  // Compare the Reed-Solomon-style family against the probabilistic one.
  std::printf("\n-- deterministic (Reed-Solomon + hash fold) construction --\n");
  harness::Table det({"n", "tau", "partitions", "field q", "P1 exact",
                      "P2 fresh-pass", "min pair separation"});
  for (auto [n, tau] : params) {
    RandomPartitionOptions opt;
    opt.tau = tau;
    opt.property2_trials = 500;
    Rng rng(n * 17 + tau);
    const auto result = make_algebraic_partitions(n, opt, rng);
    const auto& set = result.partitions;
    std::size_t min_sep = SIZE_MAX;
    for (ProcessId p = 0; p < n && min_sep > 0; ++p) {
      for (ProcessId w = p + 1; w < n; ++w) {
        std::size_t sep = 0;
        for (PartitionIndex l = 0; l < set.count(); ++l) {
          if (set[l].group_of(p) != set[l].group_of(w)) ++sep;
        }
        min_sep = std::min(min_sep, sep);
      }
    }
    det.row({harness::cell(static_cast<std::uint64_t>(n)),
             harness::cell(static_cast<std::uint64_t>(tau)),
             harness::cell(static_cast<std::uint64_t>(set.count())),
             harness::cell(result.field_size), result.property1 ? "yes" : "NO",
             harness::cell(100.0 * result.property2_pass, 1) + "%",
             harness::cell(static_cast<std::uint64_t>(min_sep))});
    if (!result.property1 || result.property2_pass < 0.999) {
      std::printf("UNEXPECTED: deterministic family failed verification\n");
      return 1;
    }
  }
  det.print(std::cout);

  // Lemma 5 sanity for the tau = 1 bit partitions.
  std::size_t checked = 0;
  for (std::size_t n : {64u, 256u}) {
    auto bits = make_bit_partitions(n);
    for (ProcessId p = 0; p < n; ++p) {
      for (ProcessId q = p + 1; q < n; ++q) {
        if (bits.separating(p, q) >= bits.count()) {
          std::printf("UNEXPECTED: Lemma 5 violated at n=%zu (%u,%u)\n", n, p, q);
          return 1;
        }
        ++checked;
      }
    }
  }
  std::printf("\nLemma 5 (bit partitions): all %zu pairs separated.\n", checked);
  return 0;
}
