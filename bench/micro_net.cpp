// Microbenchmarks for the datagram fast path (DESIGN.md section 13): real
// UDP loopback throughput with and without sendmmsg/recvmmsg batching, and
// the frame codec chain (pooled builder -> unwrap -> split -> decode) with
// and without LZ4 datagram compression.
//
// BM_UdpLoopback is the number tools/check_bench.sh records as
// transport=udp rows: datagrams/sec through a socket pair on 127.0.0.1.
// The batched rows (batch=1) must stay well ahead of the single-syscall
// rows (batch=0) - the acceptance bar for this PR's tentpole is >= 2x at
// 1200-byte datagrams.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "congos/fragment.h"
#include "net/framing.h"
#include "net/udp_transport.h"
#include "wire/compress.h"
#include "wire/envelope.h"

namespace {

using namespace congos;

/// Datagrams per measured burst: a few full batches' worth, small enough
/// that a burst always fits the 2 MB socket buffers (no loopback drops).
constexpr std::size_t kBurst = 128;

struct CountingSink final : net::DatagramSink {
  std::uint64_t datagrams = 0;
  void on_datagram(ProcessId, std::span<const std::uint8_t>) override {
    ++datagrams;
  }
};

sim::Envelope bench_envelope(std::size_t data_bytes) {
  auto body = std::make_shared<core::DirectRumorPayload>();
  body->rumor.uid = RumorUid{0, 7};
  body->rumor.data.assign(data_bytes, 0x5C);
  body->rumor.deadline = 4096;
  body->rumor.dest = DynamicBitset(8);
  body->rumor.dest.set(1);
  sim::Envelope e;
  e.from = 0;
  e.to = 1;
  e.tag.kind = sim::ServiceKind::kFallback;
  e.body = std::move(body);
  return e;
}

// Loopback datagram throughput: burst-send kBurst datagrams of
// range(1) bytes, flush, drain them all back. range(0) selects the wire
// path (0 = single syscalls, 1 = sendmmsg/recvmmsg batches).
void BM_UdpLoopback(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const auto dgram_bytes = static_cast<std::size_t>(state.range(1));

  net::UdpTransport tx;
  net::UdpTransport rx;
  std::string err;
  if (!tx.open(0, &err) || !rx.open(0, &err)) {
    state.SkipWithError(("open: " + err).c_str());
    return;
  }
  tx.set_peer(1, rx.local_port());
  rx.set_peer(0, tx.local_port());
  tx.set_batching(batched);
  rx.set_batching(batched);
  if (batched && !tx.batching()) {
    state.SkipWithError("sendmmsg/recvmmsg unavailable on this platform");
    return;
  }

  net::DatagramPool pool;
  const std::vector<std::uint8_t> payload(dgram_bytes, 0xB7);
  CountingSink sink;
  bool stalled = false;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBurst; ++i) {
      net::DatagramHandle d = pool.acquire();
      d->bytes = payload;  // capacity retained after the first lap: no alloc
      tx.send(1, std::move(d));
      if (!batched && (i + 1) % net::UdpTransport::kMaxBatch == 0) {
        tx.flush();  // the single path flushes queued stragglers inline
      }
    }
    for (int tries = 0; !tx.flush() && tries < 10000; ++tries) {
    }
    const std::uint64_t want = sink.datagrams + kBurst;
    int tries = 0;
    while (sink.datagrams < want && tries++ < 10000) rx.drain(sink);
    if (sink.datagrams < want) stalled = true;
  }
  if (stalled) {
    state.SkipWithError("loopback dropped datagrams; burst exceeds rcvbuf?");
    return;
  }
  const auto total =
      static_cast<double>(state.iterations()) * static_cast<double>(kBurst);
  state.counters["datagrams_per_sec"] =
      benchmark::Counter(total, benchmark::Counter::kIsRate);
  state.counters["send_syscalls_per_dgram"] = benchmark::Counter(
      static_cast<double>(tx.stats().send_syscalls) / total);
  state.SetBytesProcessed(static_cast<std::int64_t>(
      total * static_cast<double>(dgram_bytes)));
}
BENCHMARK(BM_UdpLoopback)
    ->ArgNames({"batch", "bytes"})
    ->Args({0, 1200})
    ->Args({1, 1200})
    ->Args({0, 256})
    ->Args({1, 256})
    ->Unit(benchmark::kMicrosecond);

// The codec chain around the socket: envelopes through the pooled
// DatagramBuilder into coalesced datagrams, then unwrap -> split -> decode
// on the receive side. range(0) = 1 adds the LZ4 container on both sides.
void BM_DatagramCodec(benchmark::State& state) {
  const bool compress = state.range(0) != 0;
  if (compress && !wire::lz4_available()) {
    state.SkipWithError("LZ4 unavailable in this process");
    return;
  }
  const sim::Envelope e = bench_envelope(96);
  constexpr int kFramesPerLap = 64;

  net::DatagramPool pool;
  net::DatagramBuilder builder;
  builder.set_pool(&pool);
  std::vector<net::DatagramHandle> shipped;
  shipped.reserve(16);
  std::vector<std::uint8_t> compress_scratch;
  std::vector<std::uint8_t> unwrap_scratch;
  std::uint64_t frames = 0;
  std::uint64_t failures = 0;

  for (auto _ : state) {
    const auto ship = [&](net::DatagramHandle d) {
      if (compress) {
        (void)net::compress_datagram(&d->bytes, &compress_scratch);
      }
      shipped.push_back(std::move(d));
    };
    for (int i = 0; i < kFramesPerLap; ++i) {
      if (!builder.add(e, 100, ship)) ++failures;
    }
    builder.finish(ship);
    for (net::DatagramHandle& d : shipped) {
      std::span<const std::uint8_t> body;
      if (net::unwrap_datagram(d->bytes, &unwrap_scratch, &body) ==
          net::DatagramKind::kMalformed) {
        ++failures;
        continue;
      }
      net::FrameSplitter sp(body);
      std::span<const std::uint8_t> frame;
      while (sp.next(&frame) == net::FrameSplitter::Status::kFrame) {
        wire::DecodedEnvelope dec;
        if (wire::decode_envelope(frame.data(), frame.size(), &dec)) {
          ++frames;
        } else {
          ++failures;
        }
      }
      d.reset();
    }
    shipped.clear();
  }
  if (failures > 0) {
    state.SkipWithError("codec chain reported failures");
    return;
  }
  benchmark::DoNotOptimize(frames);
  state.counters["frames_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kFramesPerLap,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DatagramCodec)
    ->ArgNames({"lz4"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
