// Microbenchmarks: partition construction and queries.
#include <benchmark/benchmark.h>

#include "baseline/subset_cover.h"
#include "partition/bit_partition.h"
#include "partition/random_partition.h"

namespace {

using namespace congos;
using namespace congos::partition;

void BM_BitPartitions(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto set = make_bit_partitions(n);
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_BitPartitions)->Arg(64)->Arg(1024)->Arg(1 << 14);

void BM_RandomPartitions(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tau = static_cast<std::uint32_t>(state.range(1));
  Rng rng(42);
  RandomPartitionOptions opt;
  opt.tau = tau;
  opt.property2_trials = 50;
  for (auto _ : state) {
    auto result = make_random_partitions(n, opt, rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RandomPartitions)->Args({128, 2})->Args({256, 3})->Args({512, 4});

void BM_PartitionCovers(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto set = make_bit_partitions(n);
  Rng rng(7);
  auto s = DynamicBitset::from_indices(
      n, rng.sample_without_replacement(static_cast<std::uint32_t>(n),
                                        static_cast<std::uint32_t>(n / 8)));
  for (auto _ : state) {
    bool c = set[0].covers(s);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_PartitionCovers)->Arg(1024)->Arg(1 << 14);

void BM_SubsetCover(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  baseline::SubsetCover sc(n);
  Rng rng(9);
  DynamicBitset d(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.25)) d.set(i);
  }
  for (auto _ : state) {
    auto c = sc.cover(d);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SubsetCover)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
