// E2 (Theorem 2 / Lemmas 3, 4, 14, 15): machine-checked correctness under
// adaptive CRRI adversaries.
//
// One row per adversarial setting; every CONGOS row must show 100% on-time
// delivery of admissible pairs and zero leaks. The plain-gossip row is the
// paper's motivating contrast: it delivers fine but leaks every rumor it
// relays.
#include "bench_util.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

namespace {

harness::ScenarioConfig base(std::size_t n, std::uint64_t seed) {
  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.rounds = 384;
  cfg.workload = harness::WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.015;
  cfg.continuous.dest_min = 2;
  cfg.continuous.dest_max = 8;
  cfg.continuous.deadlines = {64};
  cfg.measure_from = 128;
  return cfg;
}

}  // namespace

int main() {
  bench::banner("E2 / Theorem 2",
                "CONGOS delivers every admissible rumor on time (QoD, prob. 1) and "
                "leaks nothing (confidentiality, prob. 1) under adaptive CRRI.");

  const std::size_t n = bench::full_scale() ? 96 : 48;
  harness::Table table({"scenario", "protocol", "injected", "admissible", "on-time",
                        "late", "missing", "leaks", "foreign-frag", "shoots"});

  // Named adversarial settings, run as one grid through the sweep runner.
  std::vector<const char*> names;
  std::vector<harness::ScenarioConfig> grid;
  auto add = [&](const char* name, harness::ScenarioConfig cfg) {
    names.push_back(name);
    grid.push_back(std::move(cfg));
  };

  add("failure-free", base(n, 1));
  {
    auto cfg = base(n, 2);
    cfg.churn = adversary::RandomChurn::Options{};
    cfg.churn->crash_prob = 0.004;
    cfg.churn->restart_prob = 0.05;
    cfg.churn->min_alive = 6;
    add("random churn", cfg);
  }
  {
    auto cfg = base(n, 3);
    cfg.crash_on_service = adversary::CrashOnService::Options{};
    cfg.crash_on_service->target = sim::ServiceKind::kProxy;
    cfg.crash_on_service->per_round_budget = 2;
    cfg.crash_on_service->total_budget = 60;
    cfg.crash_on_service->restart_after = 24;
    cfg.crash_on_service->min_alive = 6;
    add("adaptive proxy-killer", cfg);
  }
  {
    auto cfg = base(n, 4);
    cfg.crash_senders = adversary::CrashSenders::Options{};
    cfg.crash_senders->target = sim::ServiceKind::kGroupDistribution;
    cfg.crash_senders->per_round_budget = 1;
    cfg.crash_senders->total_budget = 40;
    cfg.crash_senders->min_alive = 6;
    add("adaptive GD-sender-killer", cfg);
  }
  {
    auto cfg = base(n, 5);
    cfg.protocol = harness::Protocol::kPlainGossip;
    add("failure-free (contrast)", cfg);
  }

  harness::SweepRunner::Options opts;
  opts.label = "E2";
  const auto results = harness::run_sweep(grid, opts);

  bool ok = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& r = results[i];
    table.row({names[i], to_string(grid[i].protocol), harness::cell(r.injected),
               harness::cell(r.qod.admissible_pairs),
               harness::cell(r.qod.delivered_on_time), harness::cell(r.qod.late),
               harness::cell(r.qod.missing), harness::cell(r.leaks),
               harness::cell(r.foreign_fragments), harness::cell(r.cg_shoots)});
    const bool plain = grid[i].protocol == harness::Protocol::kPlainGossip;
    ok = ok && r.qod.ok() && (plain ? r.leaks > 0 : r.leaks == 0);
  }

  table.print(std::cout);
  std::printf("\n%s\n", ok ? "OK: every CONGOS row is clean; plain gossip leaks."
                           : "UNEXPECTED: see table.");
  return ok ? 0 : 1;
}
