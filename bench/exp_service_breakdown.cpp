// E7 (Lemmas 7-10): per-service message accounting.
//
// Lemma 7 bounds the Proxy and GroupDistribution services' own traffic
// separately from the black-box gossip traffic; Lemmas 8-10 bound in-block
// delivery and confirmation. We run one instrumented execution per deadline
// class and print the per-service peaks and totals, plus the pipeline
// outcome counters (confirmed before deadline vs fallback shoots).
#include "bench_util.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

int main() {
  bench::banner("E7 / Lemmas 7-10",
                "Per-service traffic breakdown: Proxy and GroupDistribution are "
                "bounded separately from the GroupGossip/AllGossip black boxes.");

  const std::size_t n = bench::full_scale() ? 128 : 64;
  harness::Table table({"deadline", "service", "max/round", "total"});
  harness::Table outcome({"deadline", "injected", "confirmed", "shoots",
                          "reassembled deliveries", "latency mean/p50/p95/max",
                          "max bytes/round"});

  const std::vector<Round> deadlines = {64, 256};
  std::vector<harness::ScenarioConfig> grid;
  for (Round d : deadlines) {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 90 + static_cast<std::uint64_t>(d);
    cfg.rounds = std::max<Round>(4 * d, 320);
    cfg.protocol = harness::Protocol::kCongos;
    cfg.workload = harness::WorkloadKind::kContinuous;
    cfg.continuous.inject_prob = 0.02;
    cfg.continuous.dest_min = 2;
    cfg.continuous.dest_max = 8;
    cfg.continuous.deadlines = {d};
    cfg.measure_from = 2 * d;
    grid.push_back(cfg);
  }
  harness::SweepRunner::Options opts;
  opts.label = "E7";
  const auto results = harness::run_sweep(grid, opts);

  for (std::size_t i = 0; i < deadlines.size(); ++i) {
    const Round d = deadlines[i];
    const auto& r = results[i];
    const char* names[] = {"group-gossip", "all-gossip", "proxy", "group-dist",
                           "fallback"};
    const sim::ServiceKind kinds[] = {
        sim::ServiceKind::kGroupGossip, sim::ServiceKind::kAllGossip,
        sim::ServiceKind::kProxy, sim::ServiceKind::kGroupDistribution,
        sim::ServiceKind::kFallback};
    for (int i = 0; i < 5; ++i) {
      table.row({harness::cell(static_cast<std::uint64_t>(d)), names[i],
                 harness::cell(r.max_by_kind[static_cast<int>(kinds[i])]),
                 harness::cell(r.total_by_kind[static_cast<int>(kinds[i])])});
    }
    outcome.row({harness::cell(static_cast<std::uint64_t>(d)),
                 harness::cell(r.injected), harness::cell(r.cg_confirmed),
                 harness::cell(r.cg_shoots), harness::cell(r.cg_reassembled),
                 harness::cell(r.qod.mean_latency, 1) + " / " +
                     std::to_string(r.qod.latency_p50) + " / " +
                     std::to_string(r.qod.latency_p95) + " / " +
                     std::to_string(r.qod.latency_max),
                 harness::cell(r.max_bytes_per_round)});
    if (!r.qod.ok() || r.leaks != 0) {
      std::printf("UNEXPECTED: correctness violation at d=%lld\n",
                  static_cast<long long>(d));
      return 1;
    }
  }

  table.print(std::cout);
  std::printf("\n");
  outcome.print(std::cout);
  std::printf(
      "\nReading: proxy/group-dist peaks are the bounded per-iteration bursts of\n"
      "Lemma 7; gossip carries the steady fragment+metadata load; fallback stays\n"
      "at (or near) zero because confirmations beat the deadline (Lemma 10).\n");
  return 0;
}
