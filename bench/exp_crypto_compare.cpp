// E9 (alternative approaches, Section 1): cryptographic multicast vs CONGOS
// under destination-set churn.
//
// The paper argues key-tree schemes win for *stable* groups but degrade when
// every rumor has a fresh destination set. We model a stream of rumors whose
// destination set mutates by a churn fraction f between rumors, and compare
// per-rumor message costs:
//   * LKH group keying: |D| delivery messages + 2*log2(n) re-key messages
//     per membership change;
//   * per-destination encryption: |D| messages, no re-keying (the "encrypt
//     individually" fallback), but |D| public-key operations per rumor;
//   * complete-subtree broadcast encryption: |D| delivery messages and
//     cover(D) ciphertext headers (header count grows as D fragments);
//   * CONGOS: measured messages per rumor from a real run with independent
//     random destination sets (the f = 1 regime it is built for), amortized.
#include "baseline/subset_cover.h"
#include "bench_util.h"
#include "common/rng.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

namespace {

/// Mutate `dest` by replacing ~f*|D| members with fresh ones.
std::pair<std::size_t, std::size_t> churn_dest(DynamicBitset& dest, double f,
                                               Rng& rng) {
  const auto members = dest.to_vector();
  const auto changes = static_cast<std::size_t>(
      static_cast<double>(members.size()) * f + 0.5);
  std::size_t leaves = 0, joins = 0;
  for (std::size_t i = 0; i < changes; ++i) {
    // Remove a random member...
    const auto victim = members[rng.next_below(members.size())];
    if (dest.test(victim)) {
      dest.reset(victim);
      ++leaves;
    }
    // ... and add a random non-member.
    for (int tries = 0; tries < 64; ++tries) {
      const auto cand = static_cast<std::uint32_t>(rng.next_below(dest.size()));
      if (!dest.test(cand)) {
        dest.set(cand);
        ++joins;
        break;
      }
    }
  }
  return {joins, leaves};
}

}  // namespace

int main() {
  bench::banner("E9 / alternative approaches",
                "Key-tree multicast vs CONGOS as destination sets churn: "
                "re-keying dominates once groups change per rumor.");

  const std::size_t n = 128;
  const std::size_t dsize = 16;
  const std::size_t rumor_count = 500;
  const std::vector<double> churn = {0.0, 0.1, 0.25, 0.5, 1.0};

  // Measured CONGOS cost per rumor with fresh random destination sets of the
  // same size (its cost does not depend on how related consecutive
  // destination sets are - there is no group state to maintain).
  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 2024;
  cfg.rounds = 384;
  cfg.protocol = harness::Protocol::kCongos;
  cfg.workload = harness::WorkloadKind::kContinuous;
  cfg.continuous.inject_prob = 0.01;
  cfg.continuous.dest_min = dsize;
  cfg.continuous.dest_max = dsize;
  cfg.continuous.deadlines = {128};
  cfg.measure_from = 256;
  cfg.audit_confidentiality = false;  // cost comparison; E2 audits payloads
  harness::SweepRunner::Options sweep_opts;
  sweep_opts.label = "E9";
  const auto congos = harness::run_sweep({cfg}, sweep_opts).front();
  const double congos_per_rumor =
      congos.injected == 0
          ? 0.0
          : static_cast<double>(congos.total_messages) /
                static_cast<double>(congos.injected);

  baseline::SubsetCover sc(n);
  Rng rng(77);

  harness::Table table({"churn f", "LKH msgs/rumor", "rekeys/rumor",
                        "per-dest msgs/rumor", "CS headers/rumor",
                        "congos msgs/rumor"});

  for (double f : churn) {
    DynamicBitset dest = DynamicBitset::from_indices(
        n, rng.sample_without_replacement(static_cast<std::uint32_t>(n),
                                          static_cast<std::uint32_t>(dsize)));
    std::uint64_t lkh_total = 0, rekey_total = 0, perdest_total = 0,
                  headers_total = 0;
    for (std::size_t r = 0; r < rumor_count; ++r) {
      const auto [joins, leaves] = churn_dest(dest, f, rng);
      rekey_total += baseline::lkh_rekey_messages(n, joins, leaves);
      lkh_total += baseline::per_destination_messages(dest) +
                   baseline::lkh_rekey_messages(n, joins, leaves);
      perdest_total += baseline::per_destination_messages(dest);
      headers_total += sc.cover_size(dest);
    }
    table.row({harness::cell(f, 2),
               harness::cell(static_cast<double>(lkh_total) / rumor_count, 1),
               harness::cell(static_cast<double>(rekey_total) / rumor_count, 1),
               harness::cell(static_cast<double>(perdest_total) / rumor_count, 1),
               harness::cell(static_cast<double>(headers_total) / rumor_count, 1),
               harness::cell(congos_per_rumor, 1)});
  }
  table.print(std::cout);
  std::printf(
      "\nReading: LKH's per-rumor cost rises with churn (re-keying); CONGOS's\n"
      "cost is flat - it maintains no group state, which is the paper's case\n"
      "for fragment collaboration when 'each rumor has a different destination\n"
      "set'. (CONGOS trades this for more total messages at small scales; per-\n"
      "destination encryption also pays |D| asymmetric crypto ops per rumor,\n"
      "not modeled here.)\n");
  return congos.qod.ok() && congos.leaks == 0 ? 0 : 1;
}
