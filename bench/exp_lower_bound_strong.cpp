// E1 (Theorem 1): the price of strong confidentiality.
//
// Scenario from the proof: every process is injected one rumor at round 0;
// each process joins each destination set independently with probability
// x/n, x = n^{1/2 - 2/c}; all rumors share deadline dmax. Theorem 1 shows
// any strongly confidential algorithm sends Omega(n x) = Omega(n^{3/2-eps})
// total messages, because (w.h.p.) no message can merge more than c rumors.
//
// We run the strongly-confidential gossip baseline in exactly this scenario
// and report: the total messages it needs, the theoretical floor nx/(2c),
// the largest per-message rumor merge observed (Theorem 1 predicts <= c),
// and - for contrast - CONGOS in the same scenario, whose *per-round*
// complexity does not degrade with n the same way because all n processes
// collaborate on fragments.
#include <cmath>

#include "bench_util.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

int main() {
  bench::banner("E1 / Theorem 1",
                "Strongly confidential gossip needs Omega(n^{3/2-eps}) total "
                "messages under random destination sets (x = n^{1/2-2/c}, c = 8).");

  const double c = 8.0;
  std::vector<std::size_t> ns = {32, 64, 128, 256};
  if (bench::full_scale()) ns.push_back(512);

  harness::Table table({"n", "x", "dest-pairs", "strong total", "floor nx/2c",
                        "ratio", "max-merged", "strong max/rnd", "congos max/rnd"});

  std::vector<harness::ScenarioConfig> grid;
  for (std::size_t n : ns) {
    const double x = std::pow(static_cast<double>(n), 0.5 - 2.0 / c);
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 42 + n;
    cfg.rounds = 80;
    cfg.workload = harness::WorkloadKind::kTheorem1;
    cfg.theorem1.x = x;
    cfg.theorem1.dmax = 64;
    cfg.protocol = harness::Protocol::kStrongConfidential;
    grid.push_back(cfg);
    cfg.protocol = harness::Protocol::kCongos;
    grid.push_back(cfg);
  }
  harness::SweepRunner::Options opts;
  opts.label = "E1";
  const auto results = harness::run_sweep(grid, opts);

  for (std::size_t i = 0; i < ns.size(); ++i) {
    const std::size_t n = ns[i];
    const double x = grid[2 * i].theorem1.x;
    const auto& strong = results[2 * i + 0];
    const auto& congos = results[2 * i + 1];

    const double floor = static_cast<double>(n) * x / (2.0 * c);
    table.row({harness::cell(static_cast<std::uint64_t>(n)), harness::cell(x, 2),
               harness::cell(strong.theorem1_dest_pairs),
               harness::cell(strong.total_messages), harness::cell(floor, 0),
               harness::cell(static_cast<double>(strong.total_messages) / floor, 1),
               harness::cell(strong.strong_max_merged),
               harness::cell(strong.max_per_round),
               harness::cell(congos.max_per_round)});

    if (!strong.qod.ok() || strong.leaks != 0 || !congos.qod.ok() ||
        congos.leaks != 0) {
      std::printf("UNEXPECTED: correctness violation at n=%zu\n", n);
      return 1;
    }
  }
  table.print(std::cout);
  std::printf(
      "\nReading: 'strong total' grows like the floor (super-linear in n), the\n"
      "shape Theorem 1 predicts; CONGOS spends its messages across the whole\n"
      "deadline window via n-process collaboration instead.\n");
  return 0;
}
