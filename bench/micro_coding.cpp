// Microbenchmarks: XOR secret-sharing codec throughput.
#include <benchmark/benchmark.h>

#include "coding/xor_share.h"

namespace {

using congos::Rng;
using congos::coding::Bytes;

void BM_Split(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  Rng rng(1);
  Bytes data(len, 0x5A);
  for (auto _ : state) {
    auto frags = congos::coding::split(data, k, rng);
    benchmark::DoNotOptimize(frags);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_Split)->Args({64, 2})->Args({64, 4})->Args({4096, 2})->Args({4096, 8});

void BM_Combine(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  Rng rng(2);
  Bytes data(len, 0xA5);
  const auto frags = congos::coding::split(data, k, rng);
  for (auto _ : state) {
    auto out = congos::coding::combine(frags);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len * k));
}
BENCHMARK(BM_Combine)->Args({64, 2})->Args({4096, 2})->Args({4096, 8});

void BM_RngSample(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto s = rng.sample_without_replacement(n, k);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_RngSample)->Args({1024, 8})->Args({1024, 64})->Args({1 << 16, 32});

}  // namespace

BENCHMARK_MAIN();
