// E14 (Section 7, "Open questions: malicious users"): freeloading processes.
//
// A lazy process follows the protocol for its own rumors but silently drops
// proxy requests and never runs GroupDistribution. The paper conjectures the
// redundancy built for collusion tolerance also absorbs non-delivering
// groups. We sweep the lazy fraction and measure: delivery stays perfect
// (the deadline fallback is executed by each rumor's own source, which is
// honest for its own rumors), while the *confirmation* pipeline degrades -
// visible as rising fallback-shoot usage - and confidentiality is never at
// risk (laziness only removes messages).
#include "bench_util.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

int main() {
  bench::banner("E14 / Section 7 (lazy processes)",
                "Freeloaders degrade the confirmation pipeline (more fallback "
                "shoots) but can never break QoD or confidentiality.");

  const std::size_t n = bench::full_scale() ? 96 : 48;
  harness::Table table({"lazy %", "injected", "on-time %", "confirmed %",
                        "shoots", "fallback msgs", "leaks"});

  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 0.9, 0.97};
  std::vector<harness::ScenarioConfig> grid;
  for (double f : fractions) {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 4100 + static_cast<std::uint64_t>(f * 100);
    cfg.rounds = 384;
    cfg.protocol = harness::Protocol::kCongos;
    cfg.lazy_fraction = f;
    cfg.workload = harness::WorkloadKind::kContinuous;
    cfg.continuous.inject_prob = 0.015;
    cfg.continuous.dest_min = 2;
    cfg.continuous.dest_max = 6;
    cfg.continuous.deadlines = {64};
    cfg.measure_from = 128;
    grid.push_back(cfg);
  }
  harness::SweepRunner::Options opts;
  opts.label = "E14";
  const auto results = harness::run_sweep(grid, opts);

  bool ok = true;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double f = fractions[i];
    const auto& r = results[i];
    const double on_time =
        r.qod.admissible_pairs == 0
            ? 100.0
            : 100.0 * static_cast<double>(r.qod.delivered_on_time) /
                  static_cast<double>(r.qod.admissible_pairs);
    const double confirmed =
        r.injected == 0 ? 0.0
                        : 100.0 * static_cast<double>(r.cg_confirmed) /
                              static_cast<double>(r.injected);
    table.row({harness::cell(f * 100, 0), harness::cell(r.injected),
               harness::cell(on_time, 1), harness::cell(confirmed, 1),
               harness::cell(r.cg_shoots), harness::cell(r.cg_shoot_messages),
               harness::cell(r.leaks)});
    ok = ok && r.qod.ok() && r.leaks == 0;
  }
  table.print(std::cout);
  std::printf("\n%s\n",
              ok ? "OK: 100%% on-time and zero leaks at every laziness level; "
                   "freeloading only shifts work onto the sources' fallback."
                 : "UNEXPECTED: QoD or confidentiality violated.");
  return ok ? 0 : 1;
}
