// E11 (Section 7): the price of hiding metadata.
//
// Destination-set hiding explodes each rumor into n singleton rumors (real
// content for destinations, chaff for everyone else); existence hiding adds
// continuous decoy traffic. Both keep confidentiality and QoD; both cost
// messages. We measure the multiplier.
#include "adversary/adversary.h"
#include "adversary/workload.h"
#include "audit/qod.h"
#include "bench_util.h"
#include "congos/congos_process.h"
#include "congos/extensions.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace congos;

namespace {

/// Workload wrapper: injects destination-hidden singleton bursts. Because a
/// process can inject only one rumor per round, the n singletons of one
/// hidden rumor are spread across n consecutive rounds (pipelining them is
/// fine: each singleton is an independent rumor).
class HiddenDestWorkload final : public sim::Adversary {
 public:
  HiddenDestWorkload(double rate, Round deadline, std::size_t payload_len)
      : rate_(rate), deadline_(deadline), payload_len_(payload_len) {}

  void at_round_start(sim::Engine& engine) override {
    const auto n = static_cast<ProcessId>(engine.n());
    if (pending_.empty()) pending_.resize(n);
    if (seq_.empty()) seq_.resize(n, 1);
    auto& rng = engine.rng();
    for (ProcessId p = 0; p < n; ++p) {
      if (!engine.alive(p)) {
        pending_[p].clear();  // source crashed: its burst dies with it
        continue;
      }
      if (pending_[p].empty() && rng.chance(rate_)) {
        // A real rumor is born; explode it.
        sim::Rumor real;
        real.uid = RumorUid{p, seq_[p]};
        real.deadline = deadline_;
        real.data = adversary::canonical_payload(real.uid, payload_len_);
        const auto k = 2 + rng.next_below(5);
        real.dest = DynamicBitset::from_indices(
            engine.n(),
            rng.sample_without_replacement(n, static_cast<std::uint32_t>(k)));
        auto burst = core::hide_destination_set(real, engine.n(), seq_[p], rng);
        seq_[p] += engine.n();
        for (auto& s : burst) pending_[p].push_back(std::move(s));
        ++real_rumors_;
      }
      if (!pending_[p].empty() && !engine.injected_this_round(p)) {
        engine.inject(p, std::move(pending_[p].back()));
        pending_[p].pop_back();
        ++singletons_;
      }
    }
  }

  std::uint64_t real_rumors() const { return real_rumors_; }
  std::uint64_t singletons() const { return singletons_; }

 private:
  double rate_;
  Round deadline_;
  std::size_t payload_len_;
  std::vector<std::vector<sim::Rumor>> pending_;
  std::vector<std::uint64_t> seq_;
  std::uint64_t real_rumors_ = 0;
  std::uint64_t singletons_ = 0;
};

}  // namespace

int main() {
  bench::banner("E11 / Section 7",
                "Metadata hiding: destination-set hiding multiplies rumor count "
                "by n/|D|; cover traffic adds a steady decoy load.");

  const std::size_t n = 48;
  const Round deadline = 64;
  harness::Table table({"mode", "real rumors", "system rumors", "total msgs",
                        "msgs per real rumor", "max/rnd"});

  // All three modes run as one grid through the sweep runner. The hiding
  // adversaries are caller-owned and attached via extra_adversaries, so their
  // counters stay readable after the sweep returns.
  HiddenDestWorkload hidden(0.004, deadline, 16);
  core::CoverTraffic::Options ct;
  ct.rate = 0.02;  // 5x decoys over real traffic
  ct.deadline = deadline;
  core::CoverTraffic cover(ct);

  std::vector<harness::ScenarioConfig> grid;

  // --- baseline: plain CONGOS with visible destination sets ---------------
  {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 61;
    cfg.rounds = 320;
    cfg.protocol = harness::Protocol::kCongos;
    cfg.workload = harness::WorkloadKind::kContinuous;
    cfg.continuous.inject_prob = 0.004;
    cfg.continuous.dest_min = 2;
    cfg.continuous.dest_max = 6;
    cfg.continuous.deadlines = {deadline};
    cfg.audit_confidentiality = false;
    grid.push_back(cfg);
  }

  // --- destination-set hiding ---------------------------------------------
  {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 62;
    cfg.rounds = 320;
    cfg.protocol = harness::Protocol::kCongos;
    cfg.workload = harness::WorkloadKind::kNone;
    cfg.extra_adversaries = {&hidden};
    cfg.min_drain = deadline;  // no declared workload: drain explicitly
    cfg.audit_confidentiality = false;
    grid.push_back(cfg);
  }

  // --- existence hiding (cover traffic) ------------------------------------
  {
    harness::ScenarioConfig cfg;
    cfg.n = n;
    cfg.seed = 63;
    cfg.rounds = 320;
    cfg.protocol = harness::Protocol::kCongos;
    cfg.workload = harness::WorkloadKind::kContinuous;
    cfg.continuous.inject_prob = 0.004;
    cfg.continuous.dest_min = 2;
    cfg.continuous.dest_max = 6;
    cfg.continuous.deadlines = {deadline};
    cfg.continuous.last_injection_round = 319;
    cfg.extra_adversaries = {&cover};
    cfg.audit_confidentiality = false;
    grid.push_back(cfg);
  }

  harness::SweepRunner::Options opts;
  opts.label = "E11";
  const auto results = harness::run_sweep(grid, opts);
  for (const auto& r : results) {
    if (!r.qod.ok()) return 1;
  }

  {
    const auto& r = results[0];
    table.row({"visible destinations", harness::cell(r.injected),
               harness::cell(r.injected), harness::cell(r.total_messages),
               harness::cell(r.injected == 0
                                 ? 0.0
                                 : static_cast<double>(r.total_messages) /
                                       static_cast<double>(r.injected),
                             0),
               harness::cell(r.max_per_round)});
  }
  {
    const auto& r = results[1];
    // r.injected counts every singleton the workload injected; the real rumor
    // count lives on the (caller-owned) workload adversary.
    table.row({"hidden destinations", harness::cell(hidden.real_rumors()),
               harness::cell(hidden.singletons()),
               harness::cell(r.total_messages),
               harness::cell(hidden.real_rumors() == 0
                                 ? 0.0
                                 : static_cast<double>(r.total_messages) /
                                       static_cast<double>(hidden.real_rumors()),
                             0),
               harness::cell(r.max_per_round)});
  }
  {
    const auto& r = results[2];
    // r.injected = real rumors + decoys (both go through engine.inject).
    const std::uint64_t real = r.injected - cover.decoys_injected();
    table.row({"cover traffic (5x decoys)", harness::cell(real),
               harness::cell(r.injected), harness::cell(r.total_messages),
               harness::cell(real == 0
                                 ? 0.0
                                 : static_cast<double>(r.total_messages) /
                                       static_cast<double>(real),
                             0),
               harness::cell(r.max_per_round)});
  }

  table.print(std::cout);
  std::printf(
      "\nReading: hiding the destination set costs ~n/|D| more rumors per real\n"
      "rumor; hiding rumor existence costs the decoy rate. Both keep QoD and\n"
      "confidentiality (Section 7's trade: metadata privacy for messages).\n");
  return 0;
}
